package shim

import (
	"fmt"
	"sort"

	"nwids/internal/core"
	"nwids/internal/packet"
)

// Action is the shim's per-packet decision (§7.2).
type Action uint8

// Actions.
const (
	// Skip: another node's shim owns this hash range; ignore the packet.
	Skip Action = iota
	// Process: hand the packet to the local NIDS process.
	Process
	// Replicate: copy the packet into the tunnel toward Mirror.
	Replicate
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Skip:
		return "skip"
	case Process:
		return "process"
	case Replicate:
		return "replicate"
	default:
		return fmt.Sprintf("action(%d)", a)
	}
}

// ClassKey identifies a traffic class from a packet: the initiator-side
// (ingress, egress) PoP pair.
type ClassKey struct {
	SrcPoP, DstPoP uint8
}

// RangeRule maps the hash range [Lo, Hi) to an action for one class.
type RangeRule struct {
	Lo, Hi float64
	Act    Action
	// Mirror is the NIDS node to replicate to when Act == Replicate.
	Mirror int
}

// Config is the shim configuration for one NIDS node, compiled from the
// controller's assignment (§7.1). Hash ranges not covered by any rule are
// skipped (they belong to other nodes).
type Config struct {
	NodeID int
	Seed   uint32
	Rules  map[ClassKey][]RangeRule
}

// ClassRanges is the network-wide hash-range partition of one class: the
// §7.1 mapping of p and o fractions onto non-overlapping subranges of
// [0, 1). It is shared by all shim configs so every node agrees on range
// ownership.
type ClassRanges struct {
	Key    ClassKey
	Ranges []OwnedRange
}

// OwnedRange assigns [Lo, Hi) to a processing node; Via is the on-path
// replicator for offloaded ranges (-1 for local processing).
type OwnedRange struct {
	Lo, Hi float64
	Node   int
	Via    int
}

// PartitionTolerance is the float-drift band within which a class's
// fractions are trusted as summing to 1. Beyond it the fractions are
// renormalized before layout, so an interior bound can never overshoot 1
// (which would invert the final snapped range and uncover the tail) or
// undershoot enough to silently stretch the last owner.
const PartitionTolerance = 1e-9

// PartitionClass maps a class's fractional actions onto contiguous
// non-overlapping hash ranges covering [0, 1), first the local p fractions
// and then the offload o fractions, in deterministic order (§7.1: the
// specific order does not matter as long as all shims agree). Fractions
// are validated to sum to 1 within PartitionTolerance and renormalized
// when they do not, so float drift upstream cannot create overlapping or
// uncovered interior ranges.
func PartitionClass(actions []core.ActionFrac) []OwnedRange {
	acts := append([]core.ActionFrac(nil), actions...)
	sort.SliceStable(acts, func(i, j int) bool {
		li, lj := acts[i].Via >= 0, acts[j].Via >= 0
		if li != lj {
			return !li // local p ranges first
		}
		if acts[i].Node != acts[j].Node {
			return acts[i].Node < acts[j].Node
		}
		return acts[i].Via < acts[j].Via
	})
	sum := 0.0
	for _, a := range acts {
		if a.Frac > 0 {
			sum += a.Frac
		}
	}
	if sum <= 0 {
		return nil
	}
	scale := 1.0
	if d := sum - 1; d > PartitionTolerance || d < -PartitionTolerance {
		scale = 1 / sum
	}
	var out []OwnedRange
	acc := 0.0
	for _, a := range acts {
		if a.Frac <= 0 {
			continue
		}
		out = append(out, OwnedRange{Lo: acc, Hi: acc + a.Frac*scale, Node: a.Node, Via: a.Via})
		acc += a.Frac * scale
	}
	// After renormalization the fractions sum to 1 up to rounding; snap the
	// final bound so residual float drift cannot leave an uncovered sliver.
	if len(out) > 0 {
		out[len(out)-1].Hi = 1
	}
	return out
}

// CheckPartition validates a class partition: every range must be
// non-inverted, the ranges contiguous from 0, and the final bound exactly
// 1, so every hash value has exactly one owning range. The controller
// rejects a planned reconfiguration whose partition fails this check.
func CheckPartition(ranges []OwnedRange) error {
	if len(ranges) == 0 {
		return fmt.Errorf("shim: empty partition")
	}
	acc := 0.0
	for i, r := range ranges {
		if r.Lo != acc {
			return fmt.Errorf("shim: partition range %d starts at %.17g, want %.17g", i, r.Lo, acc)
		}
		if r.Hi <= r.Lo {
			return fmt.Errorf("shim: partition range %d is inverted or empty: [%.17g, %.17g)", i, r.Lo, r.Hi)
		}
		acc = r.Hi
	}
	if acc != 1 {
		return fmt.Errorf("shim: partition covers [0, %.17g), want [0, 1)", acc)
	}
	return nil
}

// CompileConfigs translates an assignment into one shim Config per NIDS
// node (the DC included: it processes everything tunneled to it but needs
// no class rules). All configs share the hash seed so ranges line up.
//
// The shim classifies packets by (ingress, egress) PoP pair; when a
// scenario defines several application classes over the same pair (§3),
// their fractional assignments are blended volume-weighted into one range
// partition, which is what a port-blind shim can execute. Ownership
// invariants (exactly one owner, both directions pinned) are unaffected;
// only the per-application load split becomes approximate.
func CompileConfigs(a *core.Assignment, seed uint32) map[int]*Config {
	return ConfigsFromPartitions(a, seed, PartitionAll(a))
}

// BlendedActions returns the volume-weighted blend of a's per-class
// fractional assignments keyed by (ingress, egress) PoP pair — the class
// granularity a port-blind shim can execute. The fractions under each key
// sum to 1 (up to float drift), one entry per distinct (Node, Via) pair,
// sorted in PartitionClass's deterministic layout order.
func BlendedActions(a *core.Assignment) map[ClassKey][]core.ActionFrac {
	type nv struct{ node, via int }
	weights := make(map[ClassKey]map[nv]float64)
	volume := make(map[ClassKey]float64)
	for c := range a.Actions {
		cl := &a.Scenario.Classes[c]
		key := ClassKey{SrcPoP: uint8(cl.Src), DstPoP: uint8(cl.Dst)}
		m, ok := weights[key]
		if !ok {
			m = make(map[nv]float64)
			weights[key] = m
		}
		volume[key] += cl.Sessions
		for _, act := range a.Actions[c] {
			m[nv{act.Node, act.Via}] += act.Frac * cl.Sessions
		}
	}
	out := make(map[ClassKey][]core.ActionFrac, len(weights))
	for key, m := range weights {
		vol := volume[key]
		if vol == 0 {
			continue
		}
		blended := make([]core.ActionFrac, 0, len(m))
		for k, w := range m {
			//lint:ignore nondeterminism SortActions below totally orders actions by their unique (Node,Via) key, so the append order here is immaterial
			blended = append(blended, core.ActionFrac{Node: k.node, Via: k.via, Frac: w / vol})
		}
		SortActions(blended)
		out[key] = blended
	}
	return out
}

// SortActions orders fractional actions in the deterministic layout order
// PartitionClass uses: local p ranges first, then offload o ranges, by
// (Node, Via). Every action's (Node, Via) pair is unique after blending,
// so the order is total.
func SortActions(acts []core.ActionFrac) {
	sort.SliceStable(acts, func(i, j int) bool {
		li, lj := acts[i].Via >= 0, acts[j].Via >= 0
		if li != lj {
			return !li // local p ranges first
		}
		if acts[i].Node != acts[j].Node {
			return acts[i].Node < acts[j].Node
		}
		return acts[i].Via < acts[j].Via
	})
}

// PartitionAll lays every blended class of the assignment onto hash ranges
// from scratch (no previous partition to respect). The online controller
// uses this for the initial epoch and the full-recompute baseline; see
// internal/controller for the churn-minimizing repartition.
func PartitionAll(a *core.Assignment) map[ClassKey][]OwnedRange {
	parts := make(map[ClassKey][]OwnedRange)
	for key, blended := range BlendedActions(a) {
		if p := PartitionClass(blended); p != nil {
			parts[key] = p
		}
	}
	return parts
}

// ConfigsFromPartitions translates per-class hash-range partitions into one
// shim Config per NIDS node of the assignment (the DC included: it
// processes everything tunneled to it but needs no class rules). All
// configs share the hash seed so ranges line up.
func ConfigsFromPartitions(a *core.Assignment, seed uint32, parts map[ClassKey][]OwnedRange) map[int]*Config {
	cfgs := make(map[int]*Config)
	get := func(node int) *Config {
		c, ok := cfgs[node]
		if !ok {
			c = &Config{NodeID: node, Seed: seed, Rules: make(map[ClassKey][]RangeRule)}
			cfgs[node] = c
		}
		return c
	}
	for j := 0; j < a.NumNIDS(); j++ {
		get(j)
	}
	for key, ranges := range parts {
		for _, r := range ranges {
			if r.Via < 0 {
				cfg := get(r.Node)
				cfg.Rules[key] = append(cfg.Rules[key], RangeRule{Lo: r.Lo, Hi: r.Hi, Act: Process})
			} else {
				cfg := get(r.Via)
				cfg.Rules[key] = append(cfg.Rules[key], RangeRule{Lo: r.Lo, Hi: r.Hi, Act: Replicate, Mirror: r.Node})
			}
		}
	}
	for _, cfg := range cfgs {
		for _, rules := range cfg.Rules {
			sort.Slice(rules, func(i, j int) bool { return rules[i].Lo < rules[j].Lo })
		}
	}
	return cfgs
}

// KeyForPacket derives the class key from a packet using its session
// direction: reverse-direction packets are flipped so both directions of a
// session share a key (the §7.2 bidirectional consistency requirement).
func KeyForPacket(p packet.Packet) ClassKey {
	src, dst := packet.PoPOf(p.Tuple.SrcIP), packet.PoPOf(p.Tuple.DstIP)
	if p.Dir == packet.Reverse {
		src, dst = dst, src
	}
	return ClassKey{SrcPoP: uint8(src), DstPoP: uint8(dst)}
}
