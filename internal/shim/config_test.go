package shim

import (
	"math"
	"testing"

	"nwids/internal/core"
)

// TestPartitionClassRenormalizesShortSum: fractions summing below 1 (float
// drift or a buggy upstream) must be renormalized so interior bounds keep
// their proportional share instead of the last range silently absorbing
// the shortfall.
func TestPartitionClassRenormalizesShortSum(t *testing.T) {
	out := PartitionClass([]core.ActionFrac{
		{Node: 0, Via: -1, Frac: 0.49},
		{Node: 1, Via: -1, Frac: 0.49},
	})
	if err := CheckPartition(out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d ranges, want 2", len(out))
	}
	// Equal fractions must split the space equally after renormalization.
	if math.Abs(out[0].Hi-0.5) > 1e-12 {
		t.Fatalf("interior bound = %g, want 0.5 (renormalized)", out[0].Hi)
	}
}

// TestPartitionClassRenormalizesLongSum: fractions summing above 1 used to
// push interior bounds past 1, and the final snap then inverted the last
// range, leaving part of the hash space uncovered.
func TestPartitionClassRenormalizesLongSum(t *testing.T) {
	out := PartitionClass([]core.ActionFrac{
		{Node: 0, Via: -1, Frac: 0.6},
		{Node: 1, Via: -1, Frac: 0.6},
		{Node: 2, Via: -1, Frac: 0.6},
	})
	if err := CheckPartition(out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r.Hi <= r.Lo {
			t.Fatalf("range %d inverted: %+v", i, r)
		}
		if r.Hi > 1 || r.Lo < 0 {
			t.Fatalf("range %d outside [0,1): %+v", i, r)
		}
	}
	if math.Abs(out[0].Hi-1.0/3) > 1e-12 {
		t.Fatalf("first bound = %g, want 1/3", out[0].Hi)
	}
}

// TestPartitionClassBoundaryLookup places hash values just below every
// range edge and checks each lands in exactly one range — the uncovered-
// sliver regression for drifted fraction sums.
func TestPartitionClassBoundaryLookup(t *testing.T) {
	for _, sum := range []float64{0.97, 1.0, 1.03} {
		fr := sum / 4
		out := PartitionClass([]core.ActionFrac{
			{Node: 0, Via: -1, Frac: fr},
			{Node: 1, Via: -1, Frac: fr},
			{Node: 2, Via: 0, Frac: fr},
			{Node: 3, Via: 1, Frac: fr},
		})
		if err := CheckPartition(out); err != nil {
			t.Fatalf("sum %g: %v", sum, err)
		}
		probes := []float64{0}
		for _, r := range out {
			probes = append(probes, math.Nextafter(r.Hi, 0), r.Lo)
			if r.Hi < 1 {
				probes = append(probes, r.Hi)
			}
		}
		probes = append(probes, math.Nextafter(1, 0))
		for _, h := range probes {
			owners := 0
			for _, r := range out {
				if h >= r.Lo && h < r.Hi {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("sum %g: h=%.17g has %d owning ranges, want 1", sum, h, owners)
			}
		}
	}
}

// TestPartitionClassExactSumUnchanged pins that well-formed inputs (sum
// exactly 1) keep the historical layout byte-for-byte: renormalization must
// not perturb the common case.
func TestPartitionClassExactSumUnchanged(t *testing.T) {
	out := PartitionClass([]core.ActionFrac{
		{Node: 2, Via: -1, Frac: 0.25},
		{Node: 0, Via: -1, Frac: 0.5},
		{Node: 1, Via: 0, Frac: 0.25},
	})
	want := []OwnedRange{
		{Lo: 0, Hi: 0.5, Node: 0, Via: -1},
		{Lo: 0.5, Hi: 0.75, Node: 2, Via: -1},
		{Lo: 0.75, Hi: 1, Node: 1, Via: 0},
	}
	if len(out) != len(want) {
		t.Fatalf("got %d ranges, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("range %d = %+v, want %+v", i, out[i], want[i])
		}
	}
}

func TestPartitionClassEmptyAndZero(t *testing.T) {
	if out := PartitionClass(nil); out != nil {
		t.Fatalf("PartitionClass(nil) = %v, want nil", out)
	}
	if out := PartitionClass([]core.ActionFrac{{Node: 0, Via: -1, Frac: 0}}); out != nil {
		t.Fatalf("all-zero fractions = %v, want nil", out)
	}
}

func TestCheckPartition(t *testing.T) {
	bad := [][]OwnedRange{
		nil,
		{{Lo: 0, Hi: 0.5, Node: 0, Via: -1}}, // uncovered tail
		{{Lo: 0.1, Hi: 1, Node: 0, Via: -1}}, // uncovered head
		{{Lo: 0, Hi: 0.6, Node: 0, Via: -1}, {Lo: 0.5, Hi: 1, Node: 1, Via: -1}},   // overlap
		{{Lo: 0, Hi: 0.4, Node: 0, Via: -1}, {Lo: 0.5, Hi: 1, Node: 1, Via: -1}},   // gap
		{{Lo: 0, Hi: 0.5, Node: 0, Via: -1}, {Lo: 0.5, Hi: 0.5, Node: 1, Via: -1}}, // empty range
	}
	for i, ranges := range bad {
		if err := CheckPartition(ranges); err == nil {
			t.Fatalf("case %d: want error for %v", i, ranges)
		}
	}
	good := []OwnedRange{{Lo: 0, Hi: 0.25, Node: 0, Via: -1}, {Lo: 0.25, Hi: 1, Node: 1, Via: 0}}
	if err := CheckPartition(good); err != nil {
		t.Fatal(err)
	}
}

// TestSetConfigGuards pins the epoch-push validation: a config for another
// node or hash seed is rejected and the previous config stays installed.
func TestSetConfigGuards(t *testing.T) {
	base := &Config{NodeID: 3, Seed: 9, Rules: map[ClassKey][]RangeRule{}}
	s := New(base)
	if err := s.SetConfig(&Config{NodeID: 4, Seed: 9}); err == nil {
		t.Fatal("want error for wrong node")
	}
	if err := s.SetConfig(&Config{NodeID: 3, Seed: 8}); err == nil {
		t.Fatal("want error for wrong seed")
	}
	if err := s.SetConfig(nil); err == nil {
		t.Fatal("want error for nil config")
	}
	if s.Config() != base {
		t.Fatal("rejected push must not replace the config")
	}
	next := &Config{NodeID: 3, Seed: 9, Rules: map[ClassKey][]RangeRule{}}
	if err := s.SetConfig(next); err != nil {
		t.Fatal(err)
	}
	if s.Config() != next {
		t.Fatal("accepted push must install the config")
	}
}
