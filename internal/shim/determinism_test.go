package shim

import (
	"reflect"
	"testing"

	"nwids/internal/core"
	"nwids/internal/packet"
	"nwids/internal/topology"
	"nwids/internal/traffic"
)

// Shim configs are compiled once per reconfiguration epoch and pushed to
// every node; if two compilations of the same assignment could disagree
// (e.g. via map iteration order leaking into range layout), nodes updated at
// different times would dispute hash-range ownership. These regression tests
// pin the determinism contract the parallel sweep engine and the §7.1
// distribution protocol both rely on.

// TestCompileConfigsDeterministic compiles the same assignment twice on
// every built-in evaluation topology and requires structurally identical
// configs — same rules, same ranges, same order.
func TestCompileConfigsDeterministic(t *testing.T) {
	for _, name := range topology.EvaluationNames() {
		g := topology.ByName(name)
		if g == nil {
			t.Fatalf("unknown topology %q", name)
		}
		s := core.NewScenario(g, traffic.GravityDefault(g), core.ScenarioOptions{
			ClassTemplates: core.DefaultClassTemplates(),
		})
		// Ingress assignments exercise the full per-pair blending path on all
		// eight topologies without the cost of an LP per topology; the
		// LP-solved case is covered on Internet2 below.
		a := core.Ingress(s)
		c1 := CompileConfigs(a, 42)
		c2 := CompileConfigs(a, 42)
		if !reflect.DeepEqual(c1, c2) {
			t.Errorf("%s: CompileConfigs is not deterministic for the same assignment", name)
		}
	}
}

// TestCompileConfigsDeterministicAcrossSolves re-solves the same replication
// LP and requires the compiled configs to match: determinism must hold
// end-to-end through the solver, not just for one in-memory assignment.
func TestCompileConfigsDeterministicAcrossSolves(t *testing.T) {
	g := topology.Internet2()
	s := core.NewScenario(g, traffic.GravityDefault(g), core.ScenarioOptions{})
	cfg := core.ReplicationConfig{Mirror: core.MirrorDCOnly, MaxLinkLoad: 0.4, DCCapacity: 10}
	a1, err := core.SolveReplication(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.SolveReplication(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c1 := CompileConfigs(a1, 7)
	c2 := CompileConfigs(a2, 7)
	if !reflect.DeepEqual(c1, c2) {
		t.Error("two solves of the same LP compile to different shim configs")
	}
}

// TestKeyForPacketDirectionSymmetric checks the §7.2 bidirectional
// consistency requirement across all built-in topologies: the forward and
// reverse packets of a session must resolve to the same class key, and
// their tuples must hash to the same point in [0, 1) — together these pin
// both directions to the same owning node.
func TestKeyForPacketDirectionSymmetric(t *testing.T) {
	for _, name := range topology.EvaluationNames() {
		g := topology.ByName(name)
		if g == nil {
			t.Fatalf("unknown topology %q", name)
		}
		n := g.NumNodes()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				tup := packet.FiveTuple{
					Proto:   packet.ProtoTCP,
					SrcIP:   packet.PoPIP(src, uint16(100+src)),
					DstIP:   packet.PoPIP(dst, uint16(200+dst)),
					SrcPort: uint16(10000 + src*31 + dst),
					DstPort: 80,
				}
				fwd := packet.Packet{Tuple: tup, Dir: packet.Forward}
				rev := packet.Packet{Tuple: tup.Reverse(), Dir: packet.Reverse}
				kf, kr := KeyForPacket(fwd), KeyForPacket(rev)
				if kf != kr {
					t.Fatalf("%s (%d→%d): keys differ: fwd=%+v rev=%+v", name, src, dst, kf, kr)
				}
				if want := (ClassKey{SrcPoP: uint8(src), DstPoP: uint8(dst)}); kf != want {
					t.Fatalf("%s (%d→%d): key = %+v, want %+v", name, src, dst, kf, want)
				}
				if HashFraction(tup, 9) != HashFraction(tup.Reverse(), 9) {
					t.Fatalf("%s (%d→%d): directional tuples hash to different ranges", name, src, dst)
				}
			}
		}
	}
}
