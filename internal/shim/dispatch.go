package shim

import (
	"fmt"

	"nwids/internal/packet"
)

// Decision is the outcome of a shim lookup for one packet.
type Decision struct {
	Act    Action
	Mirror int
}

// Counters tallies shim activity. Processed and Replicated count emitted
// decisions (work performed), Skipped counts packets with no decision, and
// Dual counts the extra decisions beyond the first that a merged §9
// transition configuration prescribes for one packet; under a single
// configuration Dual is always zero and Seen = Processed + Replicated +
// Skipped holds exactly.
type Counters struct {
	Seen       uint64
	Processed  uint64
	Replicated uint64
	Skipped    uint64
	// NoClass counts packets whose class had no rules at this node (still
	// skipped, tracked separately to surface misconfigurations).
	NoClass uint64
	// Dual counts decisions beyond the first emitted for a single packet:
	// the duplicated work a merged transition configuration performs so no
	// session is dropped while an epoch rolls out.
	Dual uint64
}

// Sub returns the per-field deltas of c since prev. The emulation's
// telemetry ticks use it to turn cumulative counters into per-tick rates.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Seen:       c.Seen - prev.Seen,
		Processed:  c.Processed - prev.Processed,
		Replicated: c.Replicated - prev.Replicated,
		Skipped:    c.Skipped - prev.Skipped,
		NoClass:    c.NoClass - prev.NoClass,
		Dual:       c.Dual - prev.Dual,
	}
}

// Add returns the field-wise sum of c and other, for fleet-wide rollups.
func (c Counters) Add(other Counters) Counters {
	return Counters{
		Seen:       c.Seen + other.Seen,
		Processed:  c.Processed + other.Processed,
		Replicated: c.Replicated + other.Replicated,
		Skipped:    c.Skipped + other.Skipped,
		NoClass:    c.NoClass + other.NoClass,
		Dual:       c.Dual + other.Dual,
	}
}

// Reconciled reports whether the counter identity holds: every packet seen
// was either skipped or produced decisions, and every decision beyond the
// first was tallied as Dual. Under a single (non-transition) configuration
// this reduces to Seen = Processed + Replicated + Skipped.
func (c Counters) Reconciled() bool {
	return c.Seen+c.Dual == c.Processed+c.Replicated+c.Skipped
}

// Shim executes a Config: it hashes each packet's canonical 5-tuple, looks
// up the owning hash range for the packet's class, and decides whether to
// hand the packet to the local NIDS, replicate it to a mirror, or skip it.
// Shims are deterministic and safe for concurrent use only if counters can
// race; the emulation uses one goroutine per shim.
type Shim struct {
	cfg      *Config
	comp     *compiled
	Counters Counters
}

// New returns a shim executing the given config.
func New(cfg *Config) *Shim { return &Shim{cfg: cfg, comp: compileConfig(cfg)} }

// NodeID returns the NIDS node this shim serves.
func (s *Shim) NodeID() int { return s.cfg.NodeID }

// Config returns the currently installed configuration.
func (s *Shim) Config() *Config { return s.cfg }

// SetConfig installs a new configuration epoch, preserving counters. The
// controller's two-phase rollout calls this twice per reconfiguration:
// first with the merged §9 transition config, then — once every shim has
// acknowledged — with the clean next-epoch config. An attempt to install a
// config for a different node or hash seed is rejected so a misaddressed
// push cannot silently corrupt range ownership.
func (s *Shim) SetConfig(cfg *Config) error {
	if err := s.CheckConfig(cfg); err != nil {
		return err
	}
	s.cfg = cfg
	s.comp = compileConfig(cfg)
	return nil
}

// CheckConfig validates a config against this shim without installing it:
// exactly the checks SetConfig applies. A fleet pushing one epoch to many
// shims can check every config first and only then install, so a nacked
// push leaves no shim switched to the new epoch.
func (s *Shim) CheckConfig(cfg *Config) error {
	if cfg == nil {
		return fmt.Errorf("shim: SetConfig with nil config")
	}
	if cfg.NodeID != s.cfg.NodeID {
		return fmt.Errorf("shim: SetConfig for node %d on node %d", cfg.NodeID, s.cfg.NodeID)
	}
	if cfg.Seed != s.cfg.Seed {
		return fmt.Errorf("shim: SetConfig with hash seed %d, shim uses %d", cfg.Seed, s.cfg.Seed)
	}
	return nil
}

// Decide classifies one packet. The hash is computed on the canonical
// tuple, so both directions of a session always land in the same range and
// are pinned to the same processing node. The lookup runs on the compiled
// dispatch table — one index into a class-ID-addressed CSR array, then a
// linear scan of exact uint64 bounds (rules are few per class; linear scan
// beats binary search at this size) — and allocates nothing.
//
//nwids:hotpath
func (s *Shim) Decide(p packet.Packet) Decision {
	return s.DecideHashed(p, HashTuple(p.Tuple, s.comp.seed))
}

// Hash returns the dispatch hash Decide computes internally for p. A
// driver replaying one packet through many shims that share a hash seed
// (the normal fleet configuration) can compute it once and dispatch with
// DecideHashed, instead of paying the tuple hash once per node.
func (s *Shim) Hash(p packet.Packet) uint64 { return HashTuple(p.Tuple, s.comp.seed) }

// DecideHashed classifies one packet given its precomputed dispatch hash
// (u must equal Hash(p); anything else silently misdispatches). Counters
// advance exactly as in Decide.
//
//nwids:hotpath
func (s *Shim) DecideHashed(p packet.Packet, u uint64) Decision {
	s.Counters.Seen++
	c := s.comp
	i := classIdx(KeyForPacket(p))
	if i+1 >= len(c.off) || !c.hasClass(i) {
		s.Counters.NoClass++
		s.Counters.Skipped++
		return Decision{Act: Skip}
	}
	for k := c.off[i]; k < c.off[i+1]; k++ {
		r := &c.rules[k]
		if u >= r.lo && u < r.hi {
			switch r.act {
			case Process:
				s.Counters.Processed++
			case Replicate:
				s.Counters.Replicated++
			}
			return Decision{Act: r.act, Mirror: int(r.mirror)}
		}
	}
	s.Counters.Skipped++
	return Decision{Act: Skip}
}

// DecideBatch classifies a batch of packets, appending one Decision per
// packet to out (pass a reused buffer, typically out[:0], for a
// zero-allocation steady state). Counters advance exactly as if Decide had
// been called per packet. The emulation's sharded driver and the tunnel
// layer feed batches through this to amortize per-call overhead.
//
//nwids:hotpath
func (s *Shim) DecideBatch(pkts []packet.Packet, out []Decision) []Decision {
	for i := range pkts {
		out = append(out, s.Decide(pkts[i]))
	}
	return out
}

// DecideFlow classifies an n-packet run of one flow with a single lookup.
// Dispatch is per-flow by construction — the class key and the session hash
// are both direction-independent — so the decision for a flow's first
// packet holds for every packet of the flow. Counters advance exactly as if
// Decide had been called once per packet (u must equal Hash(p)). The
// emulation driver uses this to decide each session once per path node
// instead of once per (node, packet).
//
//nwids:hotpath
func (s *Shim) DecideFlow(p packet.Packet, u uint64, n int) Decision {
	s.Counters.Seen += uint64(n)
	c := s.comp
	i := classIdx(KeyForPacket(p))
	if i+1 >= len(c.off) || !c.hasClass(i) {
		s.Counters.NoClass += uint64(n)
		s.Counters.Skipped += uint64(n)
		return Decision{Act: Skip}
	}
	for k := c.off[i]; k < c.off[i+1]; k++ {
		r := &c.rules[k]
		if u >= r.lo && u < r.hi {
			switch r.act {
			case Process:
				s.Counters.Processed += uint64(n)
			case Replicate:
				s.Counters.Replicated += uint64(n)
			}
			return Decision{Act: r.act, Mirror: int(r.mirror)}
		}
	}
	s.Counters.Skipped += uint64(n)
	return Decision{Act: Skip}
}

// DecideBatchHashed is DecideBatch over precomputed dispatch hashes
// (hashes[i] must equal Hash(pkts[i])). The emulation driver hashes each
// session's packets once and replays them through every path node's shim,
// cutting the per-(node, packet) hash to a per-packet one.
//
//nwids:hotpath
func (s *Shim) DecideBatchHashed(pkts []packet.Packet, hashes []uint64, out []Decision) []Decision {
	for i := range pkts {
		out = append(out, s.DecideHashed(pkts[i], hashes[i]))
	}
	return out
}
