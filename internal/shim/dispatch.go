package shim

import "nwids/internal/packet"

// Decision is the outcome of a shim lookup for one packet.
type Decision struct {
	Act    Action
	Mirror int
}

// Counters tallies shim activity.
type Counters struct {
	Seen       uint64
	Processed  uint64
	Replicated uint64
	Skipped    uint64
	// NoClass counts packets whose class had no rules at this node (still
	// skipped, tracked separately to surface misconfigurations).
	NoClass uint64
}

// Sub returns the per-field deltas of c since prev. The emulation's
// telemetry ticks use it to turn cumulative counters into per-tick rates.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Seen:       c.Seen - prev.Seen,
		Processed:  c.Processed - prev.Processed,
		Replicated: c.Replicated - prev.Replicated,
		Skipped:    c.Skipped - prev.Skipped,
		NoClass:    c.NoClass - prev.NoClass,
	}
}

// Shim executes a Config: it hashes each packet's canonical 5-tuple, looks
// up the owning hash range for the packet's class, and decides whether to
// hand the packet to the local NIDS, replicate it to a mirror, or skip it.
// Shims are deterministic and safe for concurrent use only if counters can
// race; the emulation uses one goroutine per shim.
type Shim struct {
	cfg      *Config
	Counters Counters
}

// New returns a shim executing the given config.
func New(cfg *Config) *Shim { return &Shim{cfg: cfg} }

// NodeID returns the NIDS node this shim serves.
func (s *Shim) NodeID() int { return s.cfg.NodeID }

// Decide classifies one packet. The hash is computed on the canonical
// tuple, so both directions of a session always land in the same range and
// are pinned to the same processing node.
func (s *Shim) Decide(p packet.Packet) Decision {
	s.Counters.Seen++
	rules, ok := s.cfg.Rules[KeyForPacket(p)]
	if !ok {
		s.Counters.NoClass++
		s.Counters.Skipped++
		return Decision{Act: Skip}
	}
	h := HashFraction(p.Tuple, s.cfg.Seed)
	// Rules are few per class; linear scan beats binary search at this size.
	for _, r := range rules {
		if h >= r.Lo && h < r.Hi {
			switch r.Act {
			case Process:
				s.Counters.Processed++
			case Replicate:
				s.Counters.Replicated++
			}
			return Decision{Act: r.Act, Mirror: r.Mirror}
		}
	}
	s.Counters.Skipped++
	return Decision{Act: Skip}
}
