package shim

import (
	"fmt"

	"nwids/internal/packet"
)

// Decision is the outcome of a shim lookup for one packet.
type Decision struct {
	Act    Action
	Mirror int
}

// Counters tallies shim activity. Processed and Replicated count emitted
// decisions (work performed), Skipped counts packets with no decision, and
// Dual counts the extra decisions beyond the first that a merged §9
// transition configuration prescribes for one packet; under a single
// configuration Dual is always zero and Seen = Processed + Replicated +
// Skipped holds exactly.
type Counters struct {
	Seen       uint64
	Processed  uint64
	Replicated uint64
	Skipped    uint64
	// NoClass counts packets whose class had no rules at this node (still
	// skipped, tracked separately to surface misconfigurations).
	NoClass uint64
	// Dual counts decisions beyond the first emitted for a single packet:
	// the duplicated work a merged transition configuration performs so no
	// session is dropped while an epoch rolls out.
	Dual uint64
}

// Sub returns the per-field deltas of c since prev. The emulation's
// telemetry ticks use it to turn cumulative counters into per-tick rates.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Seen:       c.Seen - prev.Seen,
		Processed:  c.Processed - prev.Processed,
		Replicated: c.Replicated - prev.Replicated,
		Skipped:    c.Skipped - prev.Skipped,
		NoClass:    c.NoClass - prev.NoClass,
		Dual:       c.Dual - prev.Dual,
	}
}

// Add returns the field-wise sum of c and other, for fleet-wide rollups.
func (c Counters) Add(other Counters) Counters {
	return Counters{
		Seen:       c.Seen + other.Seen,
		Processed:  c.Processed + other.Processed,
		Replicated: c.Replicated + other.Replicated,
		Skipped:    c.Skipped + other.Skipped,
		NoClass:    c.NoClass + other.NoClass,
		Dual:       c.Dual + other.Dual,
	}
}

// Reconciled reports whether the counter identity holds: every packet seen
// was either skipped or produced decisions, and every decision beyond the
// first was tallied as Dual. Under a single (non-transition) configuration
// this reduces to Seen = Processed + Replicated + Skipped.
func (c Counters) Reconciled() bool {
	return c.Seen+c.Dual == c.Processed+c.Replicated+c.Skipped
}

// Shim executes a Config: it hashes each packet's canonical 5-tuple, looks
// up the owning hash range for the packet's class, and decides whether to
// hand the packet to the local NIDS, replicate it to a mirror, or skip it.
// Shims are deterministic and safe for concurrent use only if counters can
// race; the emulation uses one goroutine per shim.
type Shim struct {
	cfg      *Config
	Counters Counters
}

// New returns a shim executing the given config.
func New(cfg *Config) *Shim { return &Shim{cfg: cfg} }

// NodeID returns the NIDS node this shim serves.
func (s *Shim) NodeID() int { return s.cfg.NodeID }

// Config returns the currently installed configuration.
func (s *Shim) Config() *Config { return s.cfg }

// SetConfig installs a new configuration epoch, preserving counters. The
// controller's two-phase rollout calls this twice per reconfiguration:
// first with the merged §9 transition config, then — once every shim has
// acknowledged — with the clean next-epoch config. An attempt to install a
// config for a different node or hash seed is rejected so a misaddressed
// push cannot silently corrupt range ownership.
func (s *Shim) SetConfig(cfg *Config) error {
	if err := s.CheckConfig(cfg); err != nil {
		return err
	}
	s.cfg = cfg
	return nil
}

// CheckConfig validates a config against this shim without installing it:
// exactly the checks SetConfig applies. A fleet pushing one epoch to many
// shims can check every config first and only then install, so a nacked
// push leaves no shim switched to the new epoch.
func (s *Shim) CheckConfig(cfg *Config) error {
	if cfg == nil {
		return fmt.Errorf("shim: SetConfig with nil config")
	}
	if cfg.NodeID != s.cfg.NodeID {
		return fmt.Errorf("shim: SetConfig for node %d on node %d", cfg.NodeID, s.cfg.NodeID)
	}
	if cfg.Seed != s.cfg.Seed {
		return fmt.Errorf("shim: SetConfig with hash seed %d, shim uses %d", cfg.Seed, s.cfg.Seed)
	}
	return nil
}

// Decide classifies one packet. The hash is computed on the canonical
// tuple, so both directions of a session always land in the same range and
// are pinned to the same processing node.
func (s *Shim) Decide(p packet.Packet) Decision {
	s.Counters.Seen++
	rules, ok := s.cfg.Rules[KeyForPacket(p)]
	if !ok {
		s.Counters.NoClass++
		s.Counters.Skipped++
		return Decision{Act: Skip}
	}
	h := HashFraction(p.Tuple, s.cfg.Seed)
	// Rules are few per class; linear scan beats binary search at this size.
	for _, r := range rules {
		if h >= r.Lo && h < r.Hi {
			switch r.Act {
			case Process:
				s.Counters.Processed++
			case Replicate:
				s.Counters.Replicated++
			}
			return Decision{Act: r.Act, Mirror: r.Mirror}
		}
	}
	s.Counters.Skipped++
	return Decision{Act: Skip}
}
