// Package shim implements the lightweight layer interposed between the
// network and an unmodified NIDS process (§7.2): a bidirectional 5-tuple
// hash (Bob Jenkins' lookup3, built from scratch), hash-range configuration
// tables compiled from the controller's LP solution (§7.1), the per-packet
// local/replicate/skip decision, and persistent TCP tunnels to mirror nodes.
package shim

import "nwids/internal/packet"

// rot is a 32-bit left rotation.
func rot(x uint32, k uint) uint32 { return x<<k | x>>(32-k) }

// mix and final are Bob Jenkins' lookup3 mixing primitives [5].
func mix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= c
	a ^= rot(c, 4)
	c += b
	b -= a
	b ^= rot(a, 6)
	a += c
	c -= b
	c ^= rot(b, 8)
	b += a
	a -= c
	a ^= rot(c, 16)
	c += b
	b -= a
	b ^= rot(a, 19)
	a += c
	c -= b
	c ^= rot(b, 4)
	b += a
	return a, b, c
}

func final(a, b, c uint32) (uint32, uint32, uint32) {
	c ^= b
	c -= rot(b, 14)
	a ^= c
	a -= rot(c, 11)
	b ^= a
	b -= rot(a, 25)
	c ^= b
	c -= rot(b, 16)
	a ^= c
	a -= rot(c, 4)
	b ^= a
	b -= rot(a, 14)
	c ^= b
	c -= rot(b, 24)
	return a, b, c
}

// hashWords is lookup3's hashword over a fixed 4-word key, returning 64
// bits (the b and c lanes).
func hashWords(k0, k1, k2, k3, seed uint32) uint64 {
	a := uint32(0xdeadbeef) + 4<<2 + seed
	b, c := a, a
	a += k0
	b += k1
	c += k2
	a, b, c = mix(a, b, c)
	a += k3
	_, b, c = final(a, b, c)
	return uint64(b)<<32 | uint64(c)
}

// HashTuple computes the bidirectional session hash: the tuple is first
// canonicalized so both directions of a session hash identically (§7.2),
// then fed through lookup3.
func HashTuple(t packet.FiveTuple, seed uint32) uint64 {
	c := t.Canonical()
	return hashWords(c.SrcIP, c.DstIP, uint32(c.SrcPort)<<16|uint32(c.DstPort), uint32(c.Proto), seed)
}

// HashFraction maps the session hash into [0, 1) for hash-range lookup.
func HashFraction(t packet.FiveTuple, seed uint32) float64 {
	return float64(HashTuple(t, seed)) / (1 << 63) / 2
}
