package shim

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"nwids/internal/core"
	"nwids/internal/packet"
	"nwids/internal/topology"
	"nwids/internal/traffic"
)

func TestHashBidirectional(t *testing.T) {
	f := func(proto uint8, sip, dip uint32, sp, dp uint16, seed uint32) bool {
		tup := packet.FiveTuple{Proto: proto, SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp}
		return HashTuple(tup, seed) == HashTuple(tup.Reverse(), seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestHashFractionRange(t *testing.T) {
	f := func(proto uint8, sip, dip uint32, sp, dp uint16) bool {
		tup := packet.FiveTuple{Proto: proto, SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp}
		h := HashFraction(tup, 0)
		return h >= 0 && h < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestHashUniformity(t *testing.T) {
	// 10 equal buckets over 20k distinct tuples: each bucket should hold
	// 2000 ± 25%.
	const n, buckets = 20000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		tup := packet.FiveTuple{
			Proto: packet.ProtoTCP,
			SrcIP: uint32(0x0a000000 + i), DstIP: uint32(0x0b000000 + i*7),
			SrcPort: uint16(i), DstPort: 80,
		}
		counts[int(HashFraction(tup, 1)*buckets)]++
	}
	for b, c := range counts {
		if c < n/buckets*3/4 || c > n/buckets*5/4 {
			t.Fatalf("bucket %d has %d of %d (poor uniformity)", b, c, n)
		}
	}
}

func TestHashSeedChangesMapping(t *testing.T) {
	tup := packet.FiveTuple{Proto: 6, SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	if HashTuple(tup, 1) == HashTuple(tup, 2) {
		t.Fatal("different seeds should generally produce different hashes")
	}
}

func TestPartitionClassTiles(t *testing.T) {
	actions := []core.ActionFrac{
		{Node: 2, Via: -1, Frac: 0.25},
		{Node: 0, Via: -1, Frac: 0.25},
		{Node: 5, Via: 2, Frac: 0.4},
		{Node: 5, Via: 0, Frac: 0.1},
	}
	ranges := PartitionClass(actions)
	if len(ranges) != 4 {
		t.Fatalf("ranges = %d", len(ranges))
	}
	if ranges[0].Lo != 0 {
		t.Fatal("first range must start at 0")
	}
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Lo != ranges[i-1].Hi {
			t.Fatalf("gap between ranges %d and %d", i-1, i)
		}
	}
	if ranges[len(ranges)-1].Hi != 1 {
		t.Fatal("last range must end at 1")
	}
	// Local ranges come first (§7.1 runs the p loop before the o loop).
	if ranges[0].Via != -1 || ranges[1].Via != -1 {
		t.Fatal("local p ranges must precede offload ranges")
	}
	if ranges[2].Via < 0 || ranges[3].Via < 0 {
		t.Fatal("offload ranges must follow")
	}
}

func TestPartitionClassDropsZeroFractions(t *testing.T) {
	ranges := PartitionClass([]core.ActionFrac{
		{Node: 0, Via: -1, Frac: 0},
		{Node: 1, Via: -1, Frac: 1},
	})
	if len(ranges) != 1 || ranges[0].Node != 1 {
		t.Fatalf("ranges = %+v", ranges)
	}
}

// buildAssignment solves a small replication instance for end-to-end tests.
func buildAssignment(t testing.TB) *core.Assignment {
	t.Helper()
	g := topology.Internet2()
	s := core.NewScenario(g, traffic.GravityDefault(g), core.ScenarioOptions{})
	a, err := core.SolveReplication(s, core.ReplicationConfig{
		Mirror: core.MirrorDCOnly, MaxLinkLoad: 0.4, DCCapacity: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestShimExactlyOneOwner is the central §7 correctness property: for any
// session, exactly one NIDS node ends up processing it — either one on-path
// shim keeps it locally, or exactly one on-path shim replicates it — and
// both directions make the identical decision.
func TestShimExactlyOneOwner(t *testing.T) {
	a := buildAssignment(t)
	cfgs := CompileConfigs(a, 42)
	shims := map[int]*Shim{}
	for id, cfg := range cfgs {
		shims[id] = New(cfg)
	}
	gen := packet.NewGenerator(packet.GeneratorConfig{PacketsPerSession: 4}, 77)
	routing := a.Scenario.Routing
	for trial := 0; trial < 2000; trial++ {
		cl := &a.Scenario.Classes[trial%len(a.Scenario.Classes)]
		sess := gen.Session(cl.Src, cl.Dst)
		ownersFwd := ownersOf(t, shims, routing, sess, packet.Forward)
		ownersRev := ownersOf(t, shims, routing, sess, packet.Reverse)
		if len(ownersFwd) != 1 {
			t.Fatalf("session %v has %d owners (fwd): %v", sess.Tuple, len(ownersFwd), ownersFwd)
		}
		if len(ownersRev) != 1 || ownersRev[0] != ownersFwd[0] {
			t.Fatalf("directions disagree: fwd %v rev %v", ownersFwd, ownersRev)
		}
	}
}

// ownersOf walks one direction of a session along its path and collects the
// set of NIDS nodes that would process it (locally or via replication).
func ownersOf(t *testing.T, shims map[int]*Shim, routing *topology.Routing, sess packet.Session, dir packet.Direction) []int {
	t.Helper()
	var p packet.Packet
	for _, pk := range sess.Packets {
		if pk.Dir == dir {
			p = pk
			break
		}
	}
	if p.Payload == nil {
		t.Fatal("session missing direction")
	}
	path := routing.Path(sess.SrcPoP, sess.DstPoP)
	if dir == packet.Reverse {
		path = path.Reverse()
	}
	var owners []int
	for _, node := range path.Nodes {
		switch d := shims[node].Decide(p); d.Act {
		case Process:
			owners = append(owners, node)
		case Replicate:
			owners = append(owners, d.Mirror)
		}
	}
	return owners
}

// TestShimFractionsMatchLP checks that realized per-node session fractions
// statistically match the LP's fractional assignment.
func TestShimFractionsMatchLP(t *testing.T) {
	a := buildAssignment(t)
	cfgs := CompileConfigs(a, 7)
	shims := map[int]*Shim{}
	for id, cfg := range cfgs {
		shims[id] = New(cfg)
	}
	// Use the highest-volume class for statistical significance.
	best := 0
	for c := range a.Scenario.Classes {
		if a.Scenario.Classes[c].Sessions > a.Scenario.Classes[best].Sessions {
			best = c
		}
	}
	cl := &a.Scenario.Classes[best]
	want := map[int]float64{}
	for _, act := range a.Actions[best] {
		want[act.Node] += act.Frac
	}
	gen := packet.NewGenerator(packet.GeneratorConfig{PacketsPerSession: 2}, 3)
	const n = 8000
	got := map[int]float64{}
	for i := 0; i < n; i++ {
		sess := gen.Session(cl.Src, cl.Dst)
		owners := ownersOf(t, shims, a.Scenario.Routing, sess, packet.Forward)
		got[owners[0]] += 1.0 / n
	}
	for node, w := range want {
		if math.Abs(got[node]-w) > 0.03 {
			t.Fatalf("node %d: realized %.3f vs LP %.3f", node, got[node], w)
		}
	}
}

func TestShimCountersAndNoClass(t *testing.T) {
	cfg := &Config{NodeID: 0, Seed: 1, Rules: map[ClassKey][]RangeRule{
		{SrcPoP: 1, DstPoP: 2}: {{Lo: 0, Hi: 1, Act: Process}},
	}}
	sh := New(cfg)
	known := packet.Packet{Tuple: packet.FiveTuple{SrcIP: packet.PoPIP(1, 5), DstIP: packet.PoPIP(2, 5)}}
	unknown := packet.Packet{Tuple: packet.FiveTuple{SrcIP: packet.PoPIP(9, 5), DstIP: packet.PoPIP(8, 5)}}
	if d := sh.Decide(known); d.Act != Process {
		t.Fatalf("known class should process, got %v", d.Act)
	}
	if d := sh.Decide(unknown); d.Act != Skip {
		t.Fatalf("unknown class should skip, got %v", d.Act)
	}
	if sh.Counters.Seen != 2 || sh.Counters.Processed != 1 || sh.Counters.Skipped != 1 || sh.Counters.NoClass != 1 {
		t.Fatalf("counters = %+v", sh.Counters)
	}
	if sh.NodeID() != 0 {
		t.Fatal("NodeID")
	}
}

func TestKeyForPacketDirectionFlip(t *testing.T) {
	fwd := packet.Packet{
		Tuple: packet.FiveTuple{SrcIP: packet.PoPIP(3, 1), DstIP: packet.PoPIP(7, 1)},
		Dir:   packet.Forward,
	}
	rev := packet.Packet{
		Tuple: fwd.Tuple.Reverse(),
		Dir:   packet.Reverse,
	}
	if KeyForPacket(fwd) != KeyForPacket(rev) {
		t.Fatal("both directions must map to the initiator's class key")
	}
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{Skip: "skip", Process: "process", Replicate: "replicate", Action(9): "action(9)"} {
		if a.String() != want {
			t.Fatalf("%d.String() = %q", a, a.String())
		}
	}
}

func TestPacketFramingRoundTrip(t *testing.T) {
	f := func(proto uint8, sip, dip uint32, sp, dp uint16, dir bool, payload []byte) bool {
		p := packet.Packet{
			Tuple: packet.FiveTuple{Proto: proto, SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp},
			Dir:   packet.Forward,
		}
		if dir {
			p.Dir = packet.Reverse
		}
		p.Payload = payload
		var buf bytes.Buffer
		if err := WritePacket(&buf, p); err != nil {
			return false
		}
		got, err := ReadPacket(&buf)
		if err != nil {
			return false
		}
		return got.Tuple == p.Tuple && got.Dir == p.Dir && bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReadPacketRejectsHugeFrames(t *testing.T) {
	var buf bytes.Buffer
	var hdr [headerLen]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0xff
	buf.Write(hdr[:])
	if _, err := ReadPacket(&buf); err == nil {
		t.Fatal("want error for oversized frame")
	}
}

func TestTunnelEndToEnd(t *testing.T) {
	var mu sync.Mutex
	var received []packet.Packet
	srv, err := Serve("127.0.0.1:0", func(p packet.Packet) {
		mu.Lock()
		received = append(received, p)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tun, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	gen := packet.NewGenerator(packet.GeneratorConfig{}, 5)
	sess := gen.Session(0, 1)
	for _, p := range sess.Packets {
		if err := tun.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tun.Flush(); err != nil {
		t.Fatal(err)
	}
	if tun.Sent() != uint64(len(sess.Packets)) {
		t.Fatalf("Sent = %d", tun.Sent())
	}
	// Wait for delivery.
	deadline := 200
	for {
		mu.Lock()
		n := len(received)
		mu.Unlock()
		if n == len(sess.Packets) {
			break
		}
		deadline--
		if deadline == 0 {
			t.Fatalf("only %d of %d packets arrived", n, len(sess.Packets))
		}
		sleepMs(10)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, p := range received {
		if p.Tuple != sess.Packets[i].Tuple || !bytes.Equal(p.Payload, sess.Packets[i].Payload) {
			t.Fatalf("packet %d corrupted in transit", i)
		}
	}
	if err := tun.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkShimDecide(b *testing.B) {
	a := buildAssignment(b)
	cfgs := CompileConfigs(a, 42)
	sh := New(cfgs[a.Scenario.Classes[0].Path.Ingress()])
	gen := packet.NewGenerator(packet.GeneratorConfig{PacketsPerSession: 2}, 1)
	cl := &a.Scenario.Classes[0]
	sess := gen.Session(cl.Src, cl.Dst)
	p := sess.Packets[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.Decide(p)
	}
}

func BenchmarkHashTuple(b *testing.B) {
	tup := packet.FiveTuple{Proto: 6, SrcIP: 0x0a010203, DstIP: 0x0a040506, SrcPort: 4242, DstPort: 80}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashTuple(tup, 1)
	}
}

// TestShimMultiClassBlended: with several application classes per PoP pair,
// configs blend volume-weighted, and the ownership invariant must still
// hold for every session.
func TestShimMultiClassBlended(t *testing.T) {
	g := topology.Internet2()
	s := core.NewScenario(g, traffic.GravityDefault(g), core.ScenarioOptions{
		ClassTemplates: core.DefaultClassTemplates(),
	})
	a, err := core.SolveReplication(s, core.ReplicationConfig{
		Mirror: core.MirrorDCOnly, MaxLinkLoad: 0.4, DCCapacity: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := CompileConfigs(a, 11)
	shims := map[int]*Shim{}
	for id, cfg := range cfgs {
		shims[id] = New(cfg)
	}
	gen := packet.NewGenerator(packet.GeneratorConfig{PacketsPerSession: 2}, 31)
	for trial := 0; trial < 1000; trial++ {
		cl := &a.Scenario.Classes[trial%len(a.Scenario.Classes)]
		sess := gen.Session(cl.Src, cl.Dst)
		owners := ownersOf(t, shims, a.Scenario.Routing, sess, packet.Forward)
		if len(owners) != 1 {
			t.Fatalf("session %v has %d owners under blended multi-class config", sess.Tuple, len(owners))
		}
	}
	// Blended ranges per class key still tile [0,1): total process+replicate
	// fractions across all shims must equal 1 per key.
	perKey := map[ClassKey]float64{}
	for _, cfg := range cfgs {
		for key, rules := range cfg.Rules {
			for _, r := range rules {
				perKey[key] += r.Hi - r.Lo
			}
		}
	}
	for key, total := range perKey {
		if total < 1-1e-9 || total > 1+1e-9 {
			t.Fatalf("key %v covered %.6f of the hash space", key, total)
		}
	}
}
