package shim

import "time"

// sleepMs is a tiny helper for polling loops in tests.
func sleepMs(ms int) { time.Sleep(time.Duration(ms) * time.Millisecond) }
