package shim

import (
	"fmt"

	"nwids/internal/packet"
)

// This file implements the §9 "Consistent configurations" mechanism: when
// the controller pushes a new configuration, each shim honors both the
// previous and the new configuration during the transient period. Work may
// be duplicated, but no session is ever left unowned while nodes disagree
// about which configuration epoch is current.

// MergeConfigs builds the transition configuration for one node from its
// previous and next configurations. Both must share the node ID and hash
// seed (ranges are only comparable under the same hash); a mismatch returns
// an error so a controller pushing a stale or misaddressed epoch sees a
// rejected transition instead of a crashed shim.
func MergeConfigs(prev, next *Config) (*Config, error) {
	if prev == nil || next == nil {
		return nil, fmt.Errorf("shim: MergeConfigs with nil config")
	}
	if prev.NodeID != next.NodeID {
		return nil, fmt.Errorf("shim: MergeConfigs across different nodes (%d vs %d)", prev.NodeID, next.NodeID)
	}
	if prev.Seed != next.Seed {
		return nil, fmt.Errorf("shim: MergeConfigs across different hash seeds (%d vs %d)", prev.Seed, next.Seed)
	}
	out := &Config{NodeID: prev.NodeID, Seed: prev.Seed, Rules: make(map[ClassKey][]RangeRule)}
	for key, rules := range prev.Rules {
		out.Rules[key] = append(out.Rules[key], rules...)
	}
	for key, rules := range next.Rules {
	nextRule:
		for _, r := range rules {
			for _, have := range out.Rules[key] {
				if have == r {
					continue nextRule // identical rule carried over
				}
			}
			out.Rules[key] = append(out.Rules[key], r)
		}
	}
	return out, nil
}

// DecideAll returns every action the shim's configuration prescribes for
// the packet. Under a single (non-transition) configuration ranges are
// disjoint and at most one action matches; under a merged transition
// configuration both the old and the new owner ranges can match, and the
// shim performs all of them.
//
// Counters are charged per emitted Decision, after deduplication: Processed
// plus Replicated always equals the total number of decisions returned, so
// the load the controller reads during a transition reflects work actually
// performed, not how many overlapping rules happened to match. Decisions
// beyond the first for one packet are additionally tallied in Dual, keeping
// the Seen + Dual = Processed + Replicated + Skipped identity exact under
// merged configurations (see Counters.Reconciled).
func (s *Shim) DecideAll(p packet.Packet) []Decision {
	return s.DecideAllInto(p, nil)
}

// DecideAllInto is DecideAll appending into a caller-provided buffer
// (typically buf[:0] of a reused slice) so the transition-window packet
// path allocates nothing in steady state. The returned slice aliases buf's
// array when capacity suffices.
//
//nwids:hotpath
func (s *Shim) DecideAllInto(p packet.Packet, out []Decision) []Decision {
	s.Counters.Seen++
	c := s.comp
	i := classIdx(KeyForPacket(p))
	if i+1 >= len(c.off) || !c.hasClass(i) {
		s.Counters.NoClass++
		s.Counters.Skipped++
		return out
	}
	u := HashTuple(p.Tuple, c.seed)
	base := len(out)
	for k := c.off[i]; k < c.off[i+1]; k++ {
		r := &c.rules[k]
		if u >= r.lo && u < r.hi {
			if r.act != Process && r.act != Replicate {
				continue
			}
			d := Decision{Act: r.act, Mirror: int(r.mirror)}
			dup := false
			for _, have := range out[base:] {
				if have == d {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, d)
			}
		}
	}
	emitted := out[base:]
	for _, d := range emitted {
		switch d.Act {
		case Process:
			s.Counters.Processed++
		case Replicate:
			s.Counters.Replicated++
		}
	}
	if len(emitted) == 0 {
		s.Counters.Skipped++
	} else if len(emitted) > 1 {
		s.Counters.Dual += uint64(len(emitted) - 1)
	}
	return out
}
