package shim

import (
	"fmt"

	"nwids/internal/packet"
)

// This file implements the §9 "Consistent configurations" mechanism: when
// the controller pushes a new configuration, each shim honors both the
// previous and the new configuration during the transient period. Work may
// be duplicated, but no session is ever left unowned while nodes disagree
// about which configuration epoch is current.

// MergeConfigs builds the transition configuration for one node from its
// previous and next configurations. Both must share the node ID and hash
// seed (ranges are only comparable under the same hash); a mismatch returns
// an error so a controller pushing a stale or misaddressed epoch sees a
// rejected transition instead of a crashed shim.
func MergeConfigs(prev, next *Config) (*Config, error) {
	if prev == nil || next == nil {
		return nil, fmt.Errorf("shim: MergeConfigs with nil config")
	}
	if prev.NodeID != next.NodeID {
		return nil, fmt.Errorf("shim: MergeConfigs across different nodes (%d vs %d)", prev.NodeID, next.NodeID)
	}
	if prev.Seed != next.Seed {
		return nil, fmt.Errorf("shim: MergeConfigs across different hash seeds (%d vs %d)", prev.Seed, next.Seed)
	}
	out := &Config{NodeID: prev.NodeID, Seed: prev.Seed, Rules: make(map[ClassKey][]RangeRule)}
	for key, rules := range prev.Rules {
		out.Rules[key] = append(out.Rules[key], rules...)
	}
	for key, rules := range next.Rules {
	nextRule:
		for _, r := range rules {
			for _, have := range out.Rules[key] {
				if have == r {
					continue nextRule // identical rule carried over
				}
			}
			out.Rules[key] = append(out.Rules[key], r)
		}
	}
	return out, nil
}

// DecideAll returns every action the shim's configuration prescribes for
// the packet. Under a single (non-transition) configuration ranges are
// disjoint and at most one action matches; under a merged transition
// configuration both the old and the new owner ranges can match, and the
// shim performs all of them.
//
// Counters are charged per emitted Decision, after deduplication: Processed
// plus Replicated always equals the total number of decisions returned, so
// the load the controller reads during a transition reflects work actually
// performed, not how many overlapping rules happened to match. Decisions
// beyond the first for one packet are additionally tallied in Dual, keeping
// the Seen + Dual = Processed + Replicated + Skipped identity exact under
// merged configurations (see Counters.Reconciled).
func (s *Shim) DecideAll(p packet.Packet) []Decision {
	s.Counters.Seen++
	rules, ok := s.cfg.Rules[KeyForPacket(p)]
	if !ok {
		s.Counters.NoClass++
		s.Counters.Skipped++
		return nil
	}
	h := HashFraction(p.Tuple, s.cfg.Seed)
	var out []Decision
	for _, r := range rules {
		if h >= r.Lo && h < r.Hi {
			if r.Act != Process && r.Act != Replicate {
				continue
			}
			d := Decision{Act: r.Act, Mirror: r.Mirror}
			dup := false
			for _, have := range out {
				if have == d {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, d)
			}
		}
	}
	for _, d := range out {
		switch d.Act {
		case Process:
			s.Counters.Processed++
		case Replicate:
			s.Counters.Replicated++
		}
	}
	if len(out) == 0 {
		s.Counters.Skipped++
	} else if len(out) > 1 {
		s.Counters.Dual += uint64(len(out) - 1)
	}
	return out
}
