package shim

import (
	"testing"

	"nwids/internal/core"
	"nwids/internal/nids"
	"nwids/internal/packet"
	"nwids/internal/topology"
	"nwids/internal/traffic"
)

// buildTwoAssignments solves two different configurations over the same
// scenario, modeling a controller reconfiguration.
func buildTwoAssignments(t testing.TB) (*core.Assignment, *core.Assignment) {
	t.Helper()
	g := topology.Internet2()
	s := core.NewScenario(g, traffic.GravityDefault(g), core.ScenarioOptions{})
	before, err := core.SolveReplication(s, core.ReplicationConfig{Mirror: core.MirrorNone})
	if err != nil {
		t.Fatal(err)
	}
	after, err := core.SolveReplication(s, core.ReplicationConfig{
		Mirror: core.MirrorDCOnly, MaxLinkLoad: 0.4, DCCapacity: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return before, after
}

// TestTransitionNeverDropsOwnership is the §9 consistency property: during
// a reconfiguration, with every node honoring the union of the old and new
// configurations, every session still has at least one owner — regardless
// of which configuration each individual node "believes" is current.
func TestTransitionNeverDropsOwnership(t *testing.T) {
	before, after := buildTwoAssignments(t)
	const seed = 5
	cfgBefore := CompileConfigs(before, seed)
	cfgAfter := CompileConfigs(after, seed)

	// Merged shims per node (the DC exists only in the after-config).
	merged := map[int]*Shim{}
	for id, cb := range cfgBefore {
		if ca, ok := cfgAfter[id]; ok {
			m, err := MergeConfigs(cb, ca)
			if err != nil {
				t.Fatal(err)
			}
			merged[id] = New(m)
		} else {
			merged[id] = New(cb)
		}
	}
	for id, ca := range cfgAfter {
		if _, ok := merged[id]; !ok {
			merged[id] = New(ca)
		}
	}

	gen := packet.NewGenerator(packet.GeneratorConfig{PacketsPerSession: 2}, 13)
	sc := after.Scenario
	for trial := 0; trial < 1500; trial++ {
		cl := &sc.Classes[trial%len(sc.Classes)]
		sess := gen.Session(cl.Src, cl.Dst)
		p := sess.Packets[0]
		path := sc.Routing.Path(sess.SrcPoP, sess.DstPoP)
		owners := map[int]bool{}
		for _, node := range path.Nodes {
			for _, d := range merged[node].DecideAll(p) {
				switch d.Act {
				case Process:
					owners[node] = true
				case Replicate:
					owners[d.Mirror] = true
				}
			}
		}
		if len(owners) == 0 {
			t.Fatalf("session %v unowned during transition", sess.Tuple)
		}
		// The union can legitimately have up to two owners (old + new).
		if len(owners) > 2 {
			t.Fatalf("session %v has %d owners; transition should duplicate at most once", sess.Tuple, len(owners))
		}
	}
}

func TestDecideAllSingleConfigMatchesDecide(t *testing.T) {
	_, after := buildTwoAssignments(t)
	cfgs := CompileConfigs(after, 3)
	gen := packet.NewGenerator(packet.GeneratorConfig{PacketsPerSession: 2}, 4)
	sc := after.Scenario
	for trial := 0; trial < 500; trial++ {
		cl := &sc.Classes[trial%len(sc.Classes)]
		sess := gen.Session(cl.Src, cl.Dst)
		p := sess.Packets[0]
		for _, node := range cl.Path.Nodes {
			a := New(cfgs[node])
			b := New(cfgs[node])
			single := a.Decide(p)
			multi := b.DecideAll(p)
			if single.Act == Skip {
				if len(multi) != 0 {
					t.Fatalf("Decide=skip but DecideAll=%v", multi)
				}
				continue
			}
			if len(multi) != 1 || multi[0] != single {
				t.Fatalf("Decide=%v but DecideAll=%v", single, multi)
			}
		}
	}
}

// TestMergeConfigsErrors pins the online-controller contract: a stale or
// misaddressed epoch push surfaces as a rejected transition (error), never
// a crashed shim.
func TestMergeConfigsErrors(t *testing.T) {
	a := &Config{NodeID: 1, Seed: 1, Rules: map[ClassKey][]RangeRule{}}
	b := &Config{NodeID: 2, Seed: 1, Rules: map[ClassKey][]RangeRule{}}
	c := &Config{NodeID: 1, Seed: 2, Rules: map[ClassKey][]RangeRule{}}
	for _, pair := range [][2]*Config{{a, b}, {a, c}, {a, nil}, {nil, a}} {
		if _, err := MergeConfigs(pair[0], pair[1]); err == nil {
			t.Fatalf("MergeConfigs(%v, %v): want error", pair[0], pair[1])
		}
	}
	if m, err := MergeConfigs(a, a); err != nil || m == nil {
		t.Fatalf("MergeConfigs(a, a) = %v, %v; want merged config", m, err)
	}
}

func TestMergeConfigsDedupsIdenticalRules(t *testing.T) {
	key := ClassKey{SrcPoP: 1, DstPoP: 2}
	rule := RangeRule{Lo: 0, Hi: 1, Act: Process}
	a := &Config{NodeID: 0, Seed: 1, Rules: map[ClassKey][]RangeRule{key: {rule}}}
	b := &Config{NodeID: 0, Seed: 1, Rules: map[ClassKey][]RangeRule{key: {rule}}}
	m, err := MergeConfigs(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rules[key]) != 1 {
		t.Fatalf("identical rules must merge: %v", m.Rules[key])
	}
}

// TestDecideAllCountersMatchDecisions is the counter-inflation regression
// test: under a merged transition configuration where both the old and the
// new owner ranges match a packet, Processed + Replicated must equal the
// total number of emitted decisions — not the number of matching rules —
// and the Seen + Dual = Processed + Replicated + Skipped identity must hold.
func TestDecideAllCountersMatchDecisions(t *testing.T) {
	before, after := buildTwoAssignments(t)
	const seed = 5
	cfgBefore := CompileConfigs(before, seed)
	cfgAfter := CompileConfigs(after, seed)
	merged := map[int]*Shim{}
	for id, cb := range cfgBefore {
		if ca, ok := cfgAfter[id]; ok {
			m, err := MergeConfigs(cb, ca)
			if err != nil {
				t.Fatal(err)
			}
			merged[id] = New(m)
		} else {
			merged[id] = New(cb)
		}
	}

	gen := packet.NewGenerator(packet.GeneratorConfig{PacketsPerSession: 2}, 23)
	sc := after.Scenario
	var wantProcessed, wantReplicated, decisions uint64
	for trial := 0; trial < 2000; trial++ {
		cl := &sc.Classes[trial%len(sc.Classes)]
		sess := gen.Session(cl.Src, cl.Dst)
		p := sess.Packets[0]
		for _, node := range cl.Path.Nodes {
			out := merged[node].DecideAll(p)
			decisions += uint64(len(out))
			for _, d := range out {
				switch d.Act {
				case Process:
					wantProcessed++
				case Replicate:
					wantReplicated++
				}
			}
		}
	}
	var tot Counters
	for _, sh := range merged {
		if !sh.Counters.Reconciled() {
			t.Fatalf("node %d counters do not reconcile: %+v", sh.NodeID(), sh.Counters)
		}
		tot = tot.Add(sh.Counters)
	}
	if tot.Processed != wantProcessed || tot.Replicated != wantReplicated {
		t.Fatalf("counters inflated: Processed=%d want %d, Replicated=%d want %d",
			tot.Processed, wantProcessed, tot.Replicated, wantReplicated)
	}
	if tot.Processed+tot.Replicated != decisions {
		t.Fatalf("Processed+Replicated = %d, want len(out) sum %d", tot.Processed+tot.Replicated, decisions)
	}
	if tot.Dual == 0 {
		t.Fatal("merged transition configs never emitted a dual decision; test is vacuous")
	}
	if !tot.Reconciled() {
		t.Fatalf("fleet counters do not reconcile: %+v", tot)
	}
}

// TestTransitionInterleavings is the §9 rollout safety property: across
// every interleaving of the per-node epoch rollout — during phase one each
// node runs prev or merged, during phase two merged or next — every session
// always has at least one owner, and the owner set stays within {old owner,
// new owner}, so detection output matches the single-config oracle (some
// owning engine sees every packet of the session).
func TestTransitionInterleavings(t *testing.T) {
	before, after := buildTwoAssignments(t)
	const seed = 7
	cfgBefore := CompileConfigs(before, seed)
	cfgAfter := CompileConfigs(after, seed)
	mergedCfg := map[int]*Config{}
	for id, cb := range cfgBefore {
		if ca, ok := cfgAfter[id]; ok {
			m, err := MergeConfigs(cb, ca)
			if err != nil {
				t.Fatal(err)
			}
			mergedCfg[id] = m
		} else {
			mergedCfg[id] = cb
		}
	}
	for id, ca := range cfgAfter {
		if _, ok := mergedCfg[id]; !ok {
			mergedCfg[id] = ca
		}
	}

	ownersUnder := func(cfgs map[int]*Config, path []int, p packet.Packet) map[int]bool {
		owners := map[int]bool{}
		for _, node := range path {
			cfg, ok := cfgs[node]
			if !ok {
				continue
			}
			for _, d := range New(cfg).DecideAll(p) {
				switch d.Act {
				case Process:
					owners[node] = true
				case Replicate:
					owners[d.Mirror] = true
				}
			}
		}
		return owners
	}

	gen := packet.NewGenerator(packet.GeneratorConfig{PacketsPerSession: 2}, 31)
	sc := after.Scenario
	for ci := range sc.Classes {
		cl := &sc.Classes[ci]
		sess := gen.Session(cl.Src, cl.Dst)
		p := sess.Packets[0]
		path := cl.Path.Nodes

		oldOwners := ownersUnder(cfgBefore, path, p)
		newOwners := ownersUnder(cfgAfter, path, p)
		if len(oldOwners) != 1 || len(newOwners) != 1 {
			t.Fatalf("class %d: single-config oracle has %d/%d owners", ci, len(oldOwners), len(newOwners))
		}

		// Phase one: nodes move prev → merged; phase two: merged → next.
		phases := [2][2]map[int]*Config{
			{cfgBefore, mergedCfg},
			{mergedCfg, cfgAfter},
		}
		for pi, phase := range phases {
			for mask := 0; mask < 1<<len(path); mask++ {
				cfgs := map[int]*Config{}
				for bi, node := range path {
					if mask&(1<<bi) != 0 {
						cfgs[node] = phase[1][node]
					} else {
						cfgs[node] = phase[0][node]
					}
				}
				owners := ownersUnder(cfgs, path, p)
				if len(owners) == 0 {
					t.Fatalf("class %d phase %d mask %b: session unowned", ci, pi+1, mask)
				}
				for o := range owners {
					if !oldOwners[o] && !newOwners[o] {
						t.Fatalf("class %d phase %d mask %b: unexpected owner %d (old %v new %v)",
							ci, pi+1, mask, o, oldOwners, newOwners)
					}
				}
			}
		}
	}
}

// TestTransitionInterleavingDetectionParity drives real engines through a
// sampled set of rollout interleavings and checks a planted signature is
// detected in every one — the detection analog of the ownership property.
func TestTransitionInterleavingDetectionParity(t *testing.T) {
	before, after := buildTwoAssignments(t)
	const seed = 11
	cfgBefore := CompileConfigs(before, seed)
	cfgAfter := CompileConfigs(after, seed)
	mergedCfg := map[int]*Config{}
	for id, cb := range cfgBefore {
		ca, ok := cfgAfter[id]
		if !ok {
			mergedCfg[id] = cb
			continue
		}
		m, err := MergeConfigs(cb, ca)
		if err != nil {
			t.Fatal(err)
		}
		mergedCfg[id] = m
	}
	for id, ca := range cfgAfter {
		if _, ok := mergedCfg[id]; !ok {
			mergedCfg[id] = ca
		}
	}

	rules := nids.DefaultRules()
	sig := sigOf(t, rules)
	gen := packet.NewGenerator(packet.GeneratorConfig{
		PacketsPerSession: 3, MaliciousFraction: 1, Signatures: [][]byte{sig},
	}, 41)
	sc := after.Scenario
	nNIDS := after.NumNIDS()
	for ci := 0; ci < len(sc.Classes) && ci < 4; ci++ {
		cl := &sc.Classes[ci]
		sess := gen.Session(cl.Src, cl.Dst)
		path := cl.Path.Nodes

		// Oracle: one centralized engine sees every packet.
		oracle := nids.NewEngine(rules, 20)
		for _, p := range sess.Packets {
			oracle.ProcessPacket(p)
		}
		if len(oracle.Alerts()) == 0 {
			t.Fatalf("class %d: oracle missed the planted signature", ci)
		}

		phases := [2][2]map[int]*Config{
			{cfgBefore, mergedCfg},
			{mergedCfg, cfgAfter},
		}
		for pi, phase := range phases {
			for mask := 0; mask < 1<<len(path); mask++ {
				engines := make([]*nids.Engine, nNIDS)
				for j := range engines {
					engines[j] = nids.NewEngine(rules, 20)
				}
				shims := map[int]*Shim{}
				for bi, node := range path {
					cfg := phase[0][node]
					if mask&(1<<bi) != 0 {
						cfg = phase[1][node]
					}
					shims[node] = New(cfg)
				}
				for _, p := range sess.Packets {
					// Reverse-direction packets traverse the same node set;
					// decisions are order-independent, so iterate the
					// forward path for both directions.
					for _, node := range path {
						sh := shims[node]
						for _, d := range sh.DecideAll(p) {
							switch d.Act {
							case Process:
								engines[node].ProcessPacket(p)
							case Replicate:
								engines[d.Mirror].ProcessPacket(p)
							}
						}
					}
				}
				alerts := 0
				for _, e := range engines {
					alerts += len(e.Alerts())
				}
				if alerts == 0 {
					t.Fatalf("class %d phase %d mask %b: planted signature not detected", ci, pi+1, mask)
				}
			}
		}
	}
}

// sigOf picks a signature pattern long enough for the generator to plant.
func sigOf(t *testing.T, rules []nids.Rule) []byte {
	t.Helper()
	for _, r := range rules {
		if len(r.Pattern) >= 6 {
			return r.Pattern
		}
	}
	t.Fatal("no plantable signature in default rules")
	return nil
}
