package shim

import (
	"testing"

	"nwids/internal/core"
	"nwids/internal/packet"
	"nwids/internal/topology"
	"nwids/internal/traffic"
)

// buildTwoAssignments solves two different configurations over the same
// scenario, modeling a controller reconfiguration.
func buildTwoAssignments(t testing.TB) (*core.Assignment, *core.Assignment) {
	t.Helper()
	g := topology.Internet2()
	s := core.NewScenario(g, traffic.GravityDefault(g), core.ScenarioOptions{})
	before, err := core.SolveReplication(s, core.ReplicationConfig{Mirror: core.MirrorNone})
	if err != nil {
		t.Fatal(err)
	}
	after, err := core.SolveReplication(s, core.ReplicationConfig{
		Mirror: core.MirrorDCOnly, MaxLinkLoad: 0.4, DCCapacity: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return before, after
}

// TestTransitionNeverDropsOwnership is the §9 consistency property: during
// a reconfiguration, with every node honoring the union of the old and new
// configurations, every session still has at least one owner — regardless
// of which configuration each individual node "believes" is current.
func TestTransitionNeverDropsOwnership(t *testing.T) {
	before, after := buildTwoAssignments(t)
	const seed = 5
	cfgBefore := CompileConfigs(before, seed)
	cfgAfter := CompileConfigs(after, seed)

	// Merged shims per node (the DC exists only in the after-config).
	merged := map[int]*Shim{}
	for id, cb := range cfgBefore {
		if ca, ok := cfgAfter[id]; ok {
			merged[id] = New(MergeConfigs(cb, ca))
		} else {
			merged[id] = New(cb)
		}
	}
	for id, ca := range cfgAfter {
		if _, ok := merged[id]; !ok {
			merged[id] = New(ca)
		}
	}

	gen := packet.NewGenerator(packet.GeneratorConfig{PacketsPerSession: 2}, 13)
	sc := after.Scenario
	for trial := 0; trial < 1500; trial++ {
		cl := &sc.Classes[trial%len(sc.Classes)]
		sess := gen.Session(cl.Src, cl.Dst)
		p := sess.Packets[0]
		path := sc.Routing.Path(sess.SrcPoP, sess.DstPoP)
		owners := map[int]bool{}
		for _, node := range path.Nodes {
			for _, d := range merged[node].DecideAll(p) {
				switch d.Act {
				case Process:
					owners[node] = true
				case Replicate:
					owners[d.Mirror] = true
				}
			}
		}
		if len(owners) == 0 {
			t.Fatalf("session %v unowned during transition", sess.Tuple)
		}
		// The union can legitimately have up to two owners (old + new).
		if len(owners) > 2 {
			t.Fatalf("session %v has %d owners; transition should duplicate at most once", sess.Tuple, len(owners))
		}
	}
}

func TestDecideAllSingleConfigMatchesDecide(t *testing.T) {
	_, after := buildTwoAssignments(t)
	cfgs := CompileConfigs(after, 3)
	gen := packet.NewGenerator(packet.GeneratorConfig{PacketsPerSession: 2}, 4)
	sc := after.Scenario
	for trial := 0; trial < 500; trial++ {
		cl := &sc.Classes[trial%len(sc.Classes)]
		sess := gen.Session(cl.Src, cl.Dst)
		p := sess.Packets[0]
		for _, node := range cl.Path.Nodes {
			a := New(cfgs[node])
			b := New(cfgs[node])
			single := a.Decide(p)
			multi := b.DecideAll(p)
			if single.Act == Skip {
				if len(multi) != 0 {
					t.Fatalf("Decide=skip but DecideAll=%v", multi)
				}
				continue
			}
			if len(multi) != 1 || multi[0] != single {
				t.Fatalf("Decide=%v but DecideAll=%v", single, multi)
			}
		}
	}
}

func TestMergeConfigsPanics(t *testing.T) {
	a := &Config{NodeID: 1, Seed: 1, Rules: map[ClassKey][]RangeRule{}}
	b := &Config{NodeID: 2, Seed: 1, Rules: map[ClassKey][]RangeRule{}}
	c := &Config{NodeID: 1, Seed: 2, Rules: map[ClassKey][]RangeRule{}}
	for _, pair := range [][2]*Config{{a, b}, {a, c}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			MergeConfigs(pair[0], pair[1])
		}()
	}
}

func TestMergeConfigsDedupsIdenticalRules(t *testing.T) {
	key := ClassKey{SrcPoP: 1, DstPoP: 2}
	rule := RangeRule{Lo: 0, Hi: 1, Act: Process}
	a := &Config{NodeID: 0, Seed: 1, Rules: map[ClassKey][]RangeRule{key: {rule}}}
	b := &Config{NodeID: 0, Seed: 1, Rules: map[ClassKey][]RangeRule{key: {rule}}}
	m := MergeConfigs(a, b)
	if len(m.Rules[key]) != 1 {
		t.Fatalf("identical rules must merge: %v", m.Rules[key])
	}
}
