package shim

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"nwids/internal/packet"
)

// Tunnel framing: a fixed 18-byte header followed by the payload.
//
//	u32 payloadLen | u8 proto | u32 srcIP | u32 dstIP | u16 sport | u16 dport | u8 dir
const headerLen = 18

// maxPayload bounds a frame's payload, protecting receivers from
// adversarial or corrupted length fields.
const maxPayload = 1 << 20

// WritePacket frames p onto w.
func WritePacket(w io.Writer, p packet.Packet) error {
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(p.Payload)))
	hdr[4] = p.Tuple.Proto
	binary.BigEndian.PutUint32(hdr[5:], p.Tuple.SrcIP)
	binary.BigEndian.PutUint32(hdr[9:], p.Tuple.DstIP)
	binary.BigEndian.PutUint16(hdr[13:], p.Tuple.SrcPort)
	binary.BigEndian.PutUint16(hdr[15:], p.Tuple.DstPort)
	hdr[17] = byte(p.Dir)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(p.Payload)
	return err
}

// ReadPacket reads one framed packet from r.
func ReadPacket(r io.Reader) (packet.Packet, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return packet.Packet{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:])
	if n > maxPayload {
		return packet.Packet{}, fmt.Errorf("shim: frame payload %d exceeds limit", n)
	}
	p := packet.Packet{
		Tuple: packet.FiveTuple{
			Proto:   hdr[4],
			SrcIP:   binary.BigEndian.Uint32(hdr[5:]),
			DstIP:   binary.BigEndian.Uint32(hdr[9:]),
			SrcPort: binary.BigEndian.Uint16(hdr[13:]),
			DstPort: binary.BigEndian.Uint16(hdr[15:]),
		},
		Dir: packet.Direction(hdr[17]),
	}
	if n > 0 {
		p.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, p.Payload); err != nil {
			return packet.Packet{}, err
		}
	}
	return p, nil
}

// Tunnel is a persistent client connection replicating packets to a mirror
// node (§7.2: the shim "maintains persistent tunnels with its mirror
// nodes"). Sends are buffered; call Flush before expecting delivery.
type Tunnel struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	sent uint64
}

// Dial opens a tunnel to the mirror's tunnel server.
func Dial(addr string) (*Tunnel, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shim: dial tunnel %s: %w", addr, err)
	}
	return &Tunnel{conn: conn, bw: bufio.NewWriterSize(conn, 64<<10)}, nil
}

// Send frames one packet into the tunnel.
func (t *Tunnel) Send(p packet.Packet) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := WritePacket(t.bw, p); err != nil {
		return err
	}
	t.sent++
	return nil
}

// SendBatch frames a batch of packets into the tunnel under one lock
// acquisition — the batching entry point the emulation's sharded driver
// uses so replicated packets pay the mutex and buffered-writer overhead
// per batch, not per packet. Delivery order matches the slice order.
func (t *Tunnel) SendBatch(pkts []packet.Packet) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range pkts {
		if err := WritePacket(t.bw, pkts[i]); err != nil {
			return err
		}
		t.sent++
	}
	return nil
}

// Sent returns the number of packets sent.
func (t *Tunnel) Sent() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent
}

// Flush drains buffered frames to the connection.
func (t *Tunnel) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bw.Flush()
}

// Close flushes and closes the tunnel.
func (t *Tunnel) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ferr := t.bw.Flush()
	cerr := t.conn.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Server accepts tunnel connections for a mirror node and delivers each
// received packet to the handler. The handler is invoked from per-
// connection goroutines and must be safe for concurrent use.
type Server struct {
	ln      net.Listener
	handler func(packet.Packet)
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	conns   []net.Conn
}

// Serve starts a tunnel server on addr (use "127.0.0.1:0" for an ephemeral
// port in tests).
func Serve(addr string, handler func(packet.Packet)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("shim: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			//lint:ignore errdiscard rejecting a connection that raced Close; its close error is of no use
			conn.Close()
			return
		}
		s.conns = append(s.conns, conn)
		s.mu.Unlock()
		s.wg.Add(1)
		go s.readLoop(conn)
	}
}

func (s *Server) readLoop(conn net.Conn) {
	defer s.wg.Done()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		p, err := ReadPacket(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				// Connection-level errors end the stream silently; framing
				// errors indicate a bug or attack and also end it.
				_ = err
			}
			return
		}
		s.handler(p)
	}
}

// Close stops accepting, closes all connections and waits for readers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := s.conns
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		//lint:ignore errdiscard best-effort shutdown; the listener close error is the one returned
		c.Close()
	}
	s.wg.Wait()
	return err
}
