package topology

import (
	"math/rand"
	"sort"
)

// PathPool is a precomputed collection of candidate paths with their overlap
// metrics, used to emulate routing asymmetry (§8.3): for each forward path
// we pick a "reverse" path from the pool whose Jaccard overlap with the
// forward path is closest to a target drawn from N(θ, θ/5).
type PathPool struct {
	paths []Path
}

// NewPathPool builds a pool from every all-pairs shortest path of r.
func NewPathPool(r *Routing) *PathPool {
	return &PathPool{paths: r.AllPaths()}
}

// Size returns the number of candidate paths.
func (pp *PathPool) Size() int { return len(pp.paths) }

// ClosestOverlap returns the pool path whose link-set Jaccard overlap with
// fwd is
// closest to target, together with the achieved overlap. Ties break toward
// the earlier pool entry, making selection deterministic.
func (pp *PathPool) ClosestOverlap(fwd Path, target float64) (Path, float64) {
	best := 0
	bestOv := JaccardLinks(fwd, pp.paths[0])
	bestDiff := abs(bestOv - target)
	for i := 1; i < len(pp.paths); i++ {
		ov := JaccardLinks(fwd, pp.paths[i])
		if d := abs(ov - target); d < bestDiff {
			best, bestOv, bestDiff = i, ov, d
		}
	}
	return pp.paths[best], bestOv
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// AsymmetricRoutes describes one emulated asymmetric-routing configuration:
// for every ordered ingress-egress pair the forward (shortest) path and the
// selected reverse path.
type AsymmetricRoutes struct {
	// Fwd and Rev are indexed identically; Pairs[i] gives the (src, dst).
	Pairs [][2]int
	Fwd   []Path
	Rev   []Path
	// MeanOverlap is the achieved average Jaccard overlap across pairs.
	MeanOverlap float64
}

// GenerateAsymmetric builds an asymmetric-routing configuration targeting
// expected overlap theta: each pair's forward path is the shortest path and
// its reverse path is drawn from the pool to match θ' ~ N(θ, θ/5), clamped
// to [0, 1]. The result is deterministic for a given rng state.
func GenerateAsymmetric(r *Routing, pool *PathPool, theta float64, rng *rand.Rand) *AsymmetricRoutes {
	n := r.Graph().NumNodes()
	ar := &AsymmetricRoutes{}
	var sum float64
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			fwd := r.Path(a, b)
			t := theta + rng.NormFloat64()*theta/5
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			rev, ov := pool.ClosestOverlap(fwd, t)
			ar.Pairs = append(ar.Pairs, [2]int{a, b})
			ar.Fwd = append(ar.Fwd, fwd)
			ar.Rev = append(ar.Rev, rev)
			sum += ov
		}
	}
	if len(ar.Pairs) > 0 {
		ar.MeanOverlap = sum / float64(len(ar.Pairs))
	}
	return ar
}

// OverlapLevels returns the distinct overlap values available in the pool
// against the given forward path, ascending. Useful for understanding what
// targets are achievable on small topologies.
func (pp *PathPool) OverlapLevels(fwd Path) []float64 {
	seen := make(map[float64]bool)
	var out []float64
	for _, p := range pp.paths {
		ov := JaccardLinks(fwd, p)
		if !seen[ov] {
			seen[ov] = true
			out = append(out, ov)
		}
	}
	sort.Float64s(out)
	return out
}
