package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Internet2 returns the 11-PoP Abilene/Internet2 backbone used throughout
// the paper's evaluation, with approximate metro populations (millions) for
// the gravity model.
func Internet2() *Graph {
	g := New("Internet2")
	sea := g.AddNode("Seattle", 3.0)
	snv := g.AddNode("Sunnyvale", 1.8)
	lax := g.AddNode("LosAngeles", 12.8)
	den := g.AddNode("Denver", 2.7)
	ksc := g.AddNode("KansasCity", 2.1)
	hou := g.AddNode("Houston", 6.0)
	ipl := g.AddNode("Indianapolis", 1.9)
	atl := g.AddNode("Atlanta", 5.3)
	chi := g.AddNode("Chicago", 9.5)
	nyc := g.AddNode("NewYork", 19.0)
	wdc := g.AddNode("WashingtonDC", 5.6)
	for _, l := range [][2]int{
		{sea, snv}, {sea, den}, {snv, lax}, {snv, den}, {lax, hou},
		{den, ksc}, {ksc, hou}, {ksc, ipl}, {hou, atl}, {ipl, atl},
		{ipl, chi}, {chi, nyc}, {atl, wdc}, {nyc, wdc},
	} {
		g.AddLink(l[0], l[1])
	}
	return g
}

// Geant returns a 22-PoP approximation of the GEANT European research
// backbone (circa 2004) with national metro populations in millions. The
// exact GEANT map is not redistributable; this reconstruction preserves the
// size, the dense western core and the tree-like eastern edges.
func Geant() *Graph {
	g := New("Geant")
	uk := g.AddNode("London", 14.0)
	fr := g.AddNode("Paris", 12.0)
	de := g.AddNode("Frankfurt", 5.6)
	it := g.AddNode("Milan", 7.4)
	es := g.AddNode("Madrid", 6.6)
	ch := g.AddNode("Geneva", 1.0)
	nl := g.AddNode("Amsterdam", 2.9)
	be := g.AddNode("Brussels", 2.1)
	at := g.AddNode("Vienna", 2.8)
	se := g.AddNode("Stockholm", 2.3)
	cz := g.AddNode("Prague", 2.6)
	pl := g.AddNode("Poznan", 1.0)
	hu := g.AddNode("Budapest", 3.0)
	gr := g.AddNode("Athens", 3.8)
	pt := g.AddNode("Lisbon", 2.8)
	ie := g.AddNode("Dublin", 1.9)
	lu := g.AddNode("Luxembourg", 0.6)
	si := g.AddNode("Ljubljana", 0.5)
	sk := g.AddNode("Bratislava", 0.7)
	hr := g.AddNode("Zagreb", 1.1)
	il := g.AddNode("TelAviv", 3.9)
	ro := g.AddNode("Bucharest", 2.3)
	for _, l := range [][2]int{
		{uk, fr}, {uk, nl}, {uk, ie}, {uk, se}, {fr, de}, {fr, ch}, {fr, es},
		{fr, lu}, {de, nl}, {de, ch}, {de, at}, {de, se}, {de, cz}, {de, il},
		{it, ch}, {it, at}, {it, gr}, {es, pt}, {es, it}, {nl, be}, {be, fr},
		{at, hu}, {at, si}, {at, sk}, {at, hr}, {se, pl}, {cz, sk}, {pl, cz},
		{hu, hr}, {hu, ro}, {gr, ro}, {uk, pt}, {ie, fr},
	} {
		g.AddLink(l[0], l[1])
	}
	return g
}

// Enterprise returns a 23-node multi-site enterprise network in the spirit
// of the middlebox-manifesto deployment the paper cites: a meshed HQ core,
// three regional hubs, branch sites behind the hubs, and a datacenter
// dual-homed to the core. Populations proxy per-site host counts.
func Enterprise() *Graph {
	g := New("Enterprise")
	core1 := g.AddNode("hq-core1", 8)
	core2 := g.AddNode("hq-core2", 8)
	core3 := g.AddNode("hq-core3", 8)
	dc1 := g.AddNode("dc1", 4)
	dc2 := g.AddNode("dc2", 4)
	hubE := g.AddNode("hub-east", 5)
	hubW := g.AddNode("hub-west", 5)
	hubS := g.AddNode("hub-south", 5)
	g.AddLink(core1, core2)
	g.AddLink(core2, core3)
	g.AddLink(core1, core3)
	g.AddLink(dc1, core1)
	g.AddLink(dc1, core2)
	g.AddLink(dc2, core2)
	g.AddLink(dc2, core3)
	g.AddLink(hubE, core1)
	g.AddLink(hubE, core2)
	g.AddLink(hubW, core2)
	g.AddLink(hubW, core3)
	g.AddLink(hubS, core1)
	g.AddLink(hubS, core3)
	hubs := []int{hubE, hubW, hubS}
	for i := 0; i < 15; i++ {
		b := g.AddNode(fmt.Sprintf("branch%02d", i+1), 1+0.2*float64(i%5))
		g.AddLink(b, hubs[i%3])
		if i%4 == 0 { // some branches are dual-homed
			g.AddLink(b, hubs[(i+1)%3])
		}
	}
	return g
}

// RocketfuelLike generates a synthetic ISP PoP-level topology with the given
// node count, calibrated to the shape of Rocketfuel-inferred maps (which are
// not redistributable): a small meshed backbone core, preferential
// attachment for the remaining PoPs, and a handful of shortcut links. The
// same (name, n, seed) always yields the same topology. Populations are
// lognormal, matching Roughan's gravity-model synthesis recipe.
func RocketfuelLike(name string, n int, seed int64) *Graph {
	if n < 4 {
		panic("topology: RocketfuelLike needs at least 4 nodes")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(name)
	for i := 0; i < n; i++ {
		pop := math.Exp(rng.NormFloat64()*0.9) * 2.5 // lognormal, mean ≈ 3.7M
		g.AddNode(fmt.Sprintf("%s-pop%02d", name, i), pop)
	}
	// Meshed core of ~15% of nodes (at least 3).
	core := n * 15 / 100
	if core < 3 {
		core = 3
	}
	for i := 0; i < core; i++ {
		for j := i + 1; j < core; j++ {
			if i == j {
				continue
			}
			// Mesh the core but drop a few links to avoid a perfect clique.
			if j == i+1 || rng.Float64() < 0.5 {
				g.AddLink(i, j)
			}
		}
	}
	// Remaining PoPs attach preferentially (degree-proportional), 1-3 links.
	for v := core; v < n; v++ {
		attach := 1 + rng.Intn(3)
		for k := 0; k < attach; k++ {
			total := 0
			for u := 0; u < v; u++ {
				total += g.Degree(u) + 1
			}
			pick := rng.Intn(total)
			tgt := 0
			for u := 0; u < v; u++ {
				pick -= g.Degree(u) + 1
				if pick < 0 {
					tgt = u
					break
				}
			}
			if tgt == v || linked(g, v, tgt) {
				continue
			}
			g.AddLink(v, tgt)
		}
		if g.Degree(v) == 0 { // guarantee connectivity
			g.AddLink(v, rng.Intn(v))
		}
	}
	// A few shortcut links between non-adjacent nodes.
	for k := 0; k < n/10; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b && !linked(g, a, b) {
			g.AddLink(a, b)
		}
	}
	return g
}

func linked(g *Graph, a, b int) bool {
	for _, nb := range g.Neighbors(a) {
		if nb == b {
			return true
		}
	}
	return false
}

// Named evaluation topologies, in the order of the paper's Table 1.
const (
	NameInternet2  = "Internet2"
	NameGeant      = "Geant"
	NameEnterprise = "Enterprise"
	NameTiNet      = "TiNet"
	NameTelstra    = "Telstra"
	NameSprint     = "Sprint"
	NameLevel3     = "Level3"
	NameNTT        = "NTT"
)

// Evaluation returns the eight topologies of the paper's evaluation in
// Table 1 order: Internet2 (11 PoPs), Geant (22), Enterprise (23), and
// synthetic stand-ins for the Rocketfuel-inferred TiNet (41), Telstra (44),
// Sprint (52), Level3 (63) and NTT (70).
func Evaluation() []*Graph {
	return []*Graph{
		Internet2(),
		Geant(),
		Enterprise(),
		RocketfuelLike(NameTiNet, 41, 3257),
		RocketfuelLike(NameTelstra, 44, 1221),
		RocketfuelLike(NameSprint, 52, 1239),
		RocketfuelLike(NameLevel3, 63, 3356),
		RocketfuelLike(NameNTT, 70, 2914),
	}
}

// ByName returns the named evaluation topology, or nil if unknown. Names
// are case-sensitive and listed in the Name* constants.
func ByName(name string) *Graph {
	for _, g := range Evaluation() {
		if g.Name() == name {
			return g
		}
	}
	return nil
}

// EvaluationNames lists the evaluation topology names in Table 1 order.
func EvaluationNames() []string {
	var out []string
	for _, g := range Evaluation() {
		out = append(out, g.Name())
	}
	return out
}

// MostObservingNode returns the node that observes the most traffic volume
// (including transit) under the given routing and per-path volumes, the
// paper's preferred datacenter placement (§8.2). volumes maps (src, dst)
// ordered pairs to session volume; pass nil to weight all paths equally.
func MostObservingNode(r *Routing, volume func(src, dst int) float64) int {
	n := r.Graph().NumNodes()
	obs := make([]float64, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			v := 1.0
			if volume != nil {
				v = volume(a, b)
			}
			for _, node := range r.Path(a, b).Nodes {
				obs[node] += v
			}
		}
	}
	best := 0
	for i := 1; i < n; i++ {
		if obs[i] > obs[best] {
			best = i
		}
	}
	return best
}

// MostOriginatingNode returns the node from which the most traffic
// originates (placement strategy 1 in §8.2).
func MostOriginatingNode(g *Graph, volume func(src, dst int) float64) int {
	n := g.NumNodes()
	orig := make([]float64, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if volume != nil {
				orig[a] += volume(a, b)
			} else {
				orig[a]++
			}
		}
	}
	best := 0
	for i := 1; i < n; i++ {
		if orig[i] > orig[best] {
			best = i
		}
	}
	return best
}

// MostPathsNode returns the node lying on the most end-to-end shortest
// paths (placement strategy 3 in §8.2).
func MostPathsNode(r *Routing) int {
	n := r.Graph().NumNodes()
	count := make([]int, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			for _, node := range r.Path(a, b).Nodes {
				count[node]++
			}
		}
	}
	best := 0
	for i := 1; i < n; i++ {
		if count[i] > count[best] {
			best = i
		}
	}
	return best
}

// MedoidNode returns the node with the smallest average hop distance to
// every other node (placement strategy 4 in §8.2).
func MedoidNode(r *Routing) int {
	n := r.Graph().NumNodes()
	best, bestSum := 0, math.MaxInt
	for a := 0; a < n; a++ {
		sum := 0
		for b := 0; b < n; b++ {
			if a != b {
				sum += r.Dist(a, b)
			}
		}
		if sum < bestSum {
			best, bestSum = a, sum
		}
	}
	return best
}

// KHopNeighborhood returns the IDs of all nodes within k hops of id,
// excluding id itself, ascending.
func KHopNeighborhood(g *Graph, id, k int) []int {
	dist := map[int]int{id: 0}
	frontier := []int{id}
	for d := 0; d < k; d++ {
		var next []int
		for _, v := range frontier {
			for _, nb := range g.Neighbors(v) {
				if _, ok := dist[nb]; !ok {
					dist[nb] = d + 1
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	var out []int
	for v := range dist {
		if v != id {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
