package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Format writes the graph in the repository's plain-text topology format:
//
//	topology <name>
//	node <name> <population>
//	...
//	link <nameA> <nameB>
//	...
//
// Lines starting with '#' are comments. The format round-trips through
// Parse (node IDs are assigned in declaration order).
func Format(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "topology %s\n", g.Name())
	for _, n := range g.Nodes() {
		fmt.Fprintf(bw, "node %s %s\n", n.Name, strconv.FormatFloat(n.Population, 'g', -1, 64))
	}
	for _, l := range g.Links() {
		fmt.Fprintf(bw, "link %s %s\n", g.Node(l.A).Name, g.Node(l.B).Name)
	}
	return bw.Flush()
}

// Parse reads a graph from the plain-text topology format written by
// Format. Unknown directives, duplicate node names, links naming unknown
// nodes, and malformed numbers are reported with line numbers.
func Parse(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	byName := map[string]int{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "topology":
			if len(fields) != 2 {
				return nil, fmt.Errorf("topology: line %d: want 'topology <name>'", lineNo)
			}
			if g != nil {
				return nil, fmt.Errorf("topology: line %d: duplicate topology directive", lineNo)
			}
			g = New(fields[1])
		case "node":
			if g == nil {
				return nil, fmt.Errorf("topology: line %d: node before topology directive", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("topology: line %d: want 'node <name> <population>'", lineNo)
			}
			if _, dup := byName[fields[1]]; dup {
				return nil, fmt.Errorf("topology: line %d: duplicate node %q", lineNo, fields[1])
			}
			pop, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || pop <= 0 {
				return nil, fmt.Errorf("topology: line %d: bad population %q", lineNo, fields[2])
			}
			byName[fields[1]] = g.AddNode(fields[1], pop)
		case "link":
			if g == nil {
				return nil, fmt.Errorf("topology: line %d: link before topology directive", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("topology: line %d: want 'link <a> <b>'", lineNo)
			}
			a, ok := byName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("topology: line %d: unknown node %q", lineNo, fields[1])
			}
			b, ok := byName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("topology: line %d: unknown node %q", lineNo, fields[2])
			}
			if a == b {
				return nil, fmt.Errorf("topology: line %d: self-loop at %q", lineNo, fields[1])
			}
			for _, nb := range g.Neighbors(a) {
				if nb == b {
					return nil, fmt.Errorf("topology: line %d: duplicate link %s-%s", lineNo, fields[1], fields[2])
				}
			}
			g.AddLink(a, b)
		default:
			return nil, fmt.Errorf("topology: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("topology: empty input")
	}
	return g, nil
}
