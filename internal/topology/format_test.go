package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestFormatParseRoundTrip(t *testing.T) {
	for _, g := range Evaluation() {
		var buf bytes.Buffer
		if err := Format(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if got.Name() != g.Name() || got.NumNodes() != g.NumNodes() || got.NumLinks() != g.NumLinks() {
			t.Fatalf("%s: round trip changed shape", g.Name())
		}
		for i, n := range g.Nodes() {
			if got.Node(i) != n {
				t.Fatalf("%s: node %d changed: %+v vs %+v", g.Name(), i, got.Node(i), n)
			}
		}
		for i, l := range g.Links() {
			if got.Link(i) != l {
				t.Fatalf("%s: link %d changed", g.Name(), i)
			}
		}
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	src := `
# a tiny demo
topology demo

node a 1.5
node b 2
# the only link
link a b
`
	g, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "demo" || g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Fatalf("parsed %s with %d nodes %d links", g.Name(), g.NumNodes(), g.NumLinks())
	}
	if g.Node(0).Population != 1.5 {
		t.Fatal("population lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"node first":     "node a 1\n",
		"link first":     "link a b\n",
		"dup topology":   "topology a\ntopology b\n",
		"bad population": "topology t\nnode a zero\n",
		"neg population": "topology t\nnode a -1\n",
		"dup node":       "topology t\nnode a 1\nnode a 2\n",
		"unknown node":   "topology t\nnode a 1\nlink a b\n",
		"self loop":      "topology t\nnode a 1\nlink a a\n",
		"dup link":       "topology t\nnode a 1\nnode b 1\nlink a b\nlink b a\n",
		"bad directive":  "topology t\nrouter a\n",
		"short node":     "topology t\nnode a\n",
		"short link":     "topology t\nnode a 1\nlink a\n",
		"short topology": "topology\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}
