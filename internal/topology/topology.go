// Package topology models PoP-level network topologies: nodes, undirected
// links, deterministic shortest-path routing, path overlap metrics, and the
// built-in and synthetic topologies used throughout the evaluation.
package topology

import (
	"fmt"
	"sort"
)

// Node is a PoP in the network. Population drives the gravity traffic model.
type Node struct {
	ID         int
	Name       string
	Population float64 // metro population in millions (gravity model mass)
}

// Link is an undirected edge between two PoPs.
type Link struct {
	ID   int
	A, B int
}

type neighbor struct {
	node int
	link int
}

// Graph is an undirected PoP-level topology. Construct with New and the
// Add* methods; Graph values are immutable once routing has been computed.
type Graph struct {
	name  string
	nodes []Node
	links []Link
	adj   [][]neighbor
}

// New returns an empty graph with the given name.
func New(name string) *Graph { return &Graph{name: name} }

// Name returns the topology name.
func (g *Graph) Name() string { return g.name }

// AddNode adds a PoP and returns its ID. Populations are in millions.
func (g *Graph) AddNode(name string, population float64) int {
	id := len(g.nodes)
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Population: population})
	g.adj = append(g.adj, nil)
	return id
}

// AddLink adds an undirected link between nodes a and b and returns its ID.
// Self-loops and duplicate links are rejected.
func (g *Graph) AddLink(a, b int) int {
	if a == b {
		panic(fmt.Sprintf("topology: self-loop at node %d", a))
	}
	if a < 0 || b < 0 || a >= len(g.nodes) || b >= len(g.nodes) {
		panic(fmt.Sprintf("topology: link %d-%d out of range", a, b))
	}
	for _, nb := range g.adj[a] {
		if nb.node == b {
			panic(fmt.Sprintf("topology: duplicate link %d-%d", a, b))
		}
	}
	id := len(g.links)
	g.links = append(g.links, Link{ID: id, A: a, B: b})
	g.adj[a] = append(g.adj[a], neighbor{node: b, link: id})
	g.adj[b] = append(g.adj[b], neighbor{node: a, link: id})
	return id
}

// NumNodes returns the PoP count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the node with the given ID.
func (g *Graph) Node(id int) Node { return g.nodes[id] }

// Nodes returns all nodes (shared slice; do not modify).
func (g *Graph) Nodes() []Node { return g.nodes }

// Link returns the link with the given ID.
func (g *Graph) Link(id int) Link { return g.links[id] }

// Links returns all links (shared slice; do not modify).
func (g *Graph) Links() []Link { return g.links }

// Neighbors returns the IDs of nodes adjacent to id, in insertion order.
func (g *Graph) Neighbors(id int) []int {
	out := make([]int, len(g.adj[id]))
	for i, nb := range g.adj[id] {
		out[i] = nb.node
	}
	return out
}

// Degree returns the number of links at node id.
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// Connected reports whether the graph is connected (and non-empty).
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return false
	}
	seen := make([]bool, len(g.nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.adj[v] {
			if !seen[nb.node] {
				seen[nb.node] = true
				count++
				stack = append(stack, nb.node)
			}
		}
	}
	return count == len(g.nodes)
}

// Path is a simple path through the graph. Nodes lists the PoPs in order;
// Links lists the link IDs between consecutive nodes (len(Links) ==
// len(Nodes)−1). A single-node path has no links.
type Path struct {
	Nodes []int
	Links []int
}

// Len returns the hop count (number of links).
func (p Path) Len() int { return len(p.Links) }

// Contains reports whether node id appears on the path.
func (p Path) Contains(id int) bool {
	for _, n := range p.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// Ingress returns the first node of the path.
func (p Path) Ingress() int { return p.Nodes[0] }

// Egress returns the last node of the path.
func (p Path) Egress() int { return p.Nodes[len(p.Nodes)-1] }

// Reverse returns the path traversed in the opposite direction.
func (p Path) Reverse() Path {
	n := make([]int, len(p.Nodes))
	for i, v := range p.Nodes {
		n[len(p.Nodes)-1-i] = v
	}
	l := make([]int, len(p.Links))
	for i, v := range p.Links {
		l[len(p.Links)-1-i] = v
	}
	return Path{Nodes: n, Links: l}
}

// NodeSet returns the set of node IDs on the path.
func (p Path) NodeSet() map[int]bool {
	s := make(map[int]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		s[n] = true
	}
	return s
}

// Jaccard returns the Jaccard similarity of the node sets of two paths:
// |P1 ∩ P2| / |P1 ∪ P2|, 1 when identical and 0 when disjoint.
func Jaccard(p1, p2 Path) float64 {
	s1, s2 := p1.NodeSet(), p2.NodeSet()
	return jaccardSets(s1, s2)
}

// JaccardLinks returns the Jaccard similarity of the link sets of two
// paths. The asymmetry experiments (§8.3) target this metric: two paths can
// share an isolated node yet carry traffic over entirely different links,
// and link overlap is what determines shared observation points in
// practice.
func JaccardLinks(p1, p2 Path) float64 {
	s1 := make(map[int]bool, len(p1.Links))
	for _, l := range p1.Links {
		s1[l] = true
	}
	s2 := make(map[int]bool, len(p2.Links))
	for _, l := range p2.Links {
		s2[l] = true
	}
	return jaccardSets(s1, s2)
}

func jaccardSets(s1, s2 map[int]bool) float64 {
	inter := 0
	for n := range s2 {
		if s1[n] {
			inter++
		}
	}
	union := len(s1) + len(s2) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Intersect returns the IDs of nodes appearing on both paths, ascending.
func Intersect(p1, p2 Path) []int {
	s := p1.NodeSet()
	var out []int
	seen := make(map[int]bool)
	for _, n := range p2.Nodes {
		if s[n] && !seen[n] {
			out = append(out, n)
			seen[n] = true
		}
	}
	sort.Ints(out)
	return out
}

// Routing holds all-pairs shortest paths under hop-count metric with
// deterministic tie-breaking, and guarantees route symmetry: the path from
// b to a is exactly the reverse of the path from a to b.
type Routing struct {
	g     *Graph
	dist  [][]int
	paths [][]Path // paths[a][b] for a < b; reverse derived
}

// ShortestPaths computes all-pairs shortest paths by breadth-first search
// with lowest-ID tie-breaking, then mirrors them so that routing is
// symmetric (the paper's §4 assumption).
func (g *Graph) ShortestPaths() *Routing {
	n := len(g.nodes)
	r := &Routing{g: g, dist: make([][]int, n), paths: make([][]Path, n)}
	parent := make([]int, n)
	plink := make([]int, n)
	for src := 0; src < n; src++ {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			// Deterministic neighbor order: ascending node ID.
			nbs := append([]neighbor(nil), g.adj[v]...)
			sort.Slice(nbs, func(i, j int) bool { return nbs[i].node < nbs[j].node })
			for _, nb := range nbs {
				if dist[nb.node] < 0 {
					dist[nb.node] = dist[v] + 1
					parent[nb.node] = v
					plink[nb.node] = nb.link
					queue = append(queue, nb.node)
				}
			}
		}
		r.dist[src] = dist
		r.paths[src] = make([]Path, n)
		for dst := 0; dst < n; dst++ {
			if dst <= src || dist[dst] < 0 {
				continue
			}
			var nodes, links []int
			for v := dst; v != src; v = parent[v] {
				nodes = append(nodes, v)
				links = append(links, plink[v])
			}
			nodes = append(nodes, src)
			for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
				nodes[i], nodes[j] = nodes[j], nodes[i]
			}
			for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
				links[i], links[j] = links[j], links[i]
			}
			r.paths[src][dst] = Path{Nodes: nodes, Links: links}
		}
	}
	// Materialize the reverse direction once so Path never allocates: the
	// emulation's per-packet path lookup sits on the hot path, and deriving
	// Path(b, a) with Reverse() there would cost two slices per call.
	for src := 0; src < n; src++ {
		for dst := 0; dst < src; dst++ {
			if len(r.paths[dst][src].Nodes) > 0 {
				r.paths[src][dst] = r.paths[dst][src].Reverse()
			}
		}
	}
	// Self-paths are also preallocated (used when a class's endpoints share
	// a PoP).
	for v := 0; v < n; v++ {
		r.paths[v][v] = Path{Nodes: []int{v}}
	}
	return r
}

// Dist returns the hop distance between a and b, or -1 if disconnected.
func (r *Routing) Dist(a, b int) int { return r.dist[a][b] }

// Path returns the routed path from src to dst. Path(b, a) is the exact
// reverse of Path(a, b). A path from a node to itself has one node. Both
// directions are precomputed, so the call never allocates; callers must
// not modify the returned slices.
func (r *Routing) Path(src, dst int) Path {
	return r.paths[src][dst]
}

// Graph returns the topology this routing was computed for.
func (r *Routing) Graph() *Graph { return r.g }

// AllPaths returns the routed path for every ordered pair (src ≠ dst).
func (r *Routing) AllPaths() []Path {
	n := r.g.NumNodes()
	out := make([]Path, 0, n*(n-1))
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				out = append(out, r.Path(a, b))
			}
		}
	}
	return out
}
