package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInternet2Shape(t *testing.T) {
	g := Internet2()
	if g.NumNodes() != 11 {
		t.Fatalf("Internet2 has %d nodes, want 11", g.NumNodes())
	}
	if g.NumLinks() != 14 {
		t.Fatalf("Internet2 has %d links, want 14", g.NumLinks())
	}
	if !g.Connected() {
		t.Fatal("Internet2 must be connected")
	}
}

func TestEvaluationTopologies(t *testing.T) {
	want := map[string]int{
		"Internet2": 11, "Geant": 22, "Enterprise": 23, "TiNet": 41,
		"Telstra": 44, "Sprint": 52, "Level3": 63, "NTT": 70,
	}
	got := Evaluation()
	if len(got) != len(want) {
		t.Fatalf("Evaluation returned %d topologies", len(got))
	}
	for _, g := range got {
		if want[g.Name()] != g.NumNodes() {
			t.Errorf("%s has %d PoPs, want %d", g.Name(), g.NumNodes(), want[g.Name()])
		}
		if !g.Connected() {
			t.Errorf("%s is disconnected", g.Name())
		}
		for _, n := range g.Nodes() {
			if n.Population <= 0 {
				t.Errorf("%s node %s has nonpositive population", g.Name(), n.Name)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if g := ByName("Sprint"); g == nil || g.NumNodes() != 52 {
		t.Fatal("ByName(Sprint) wrong")
	}
	if ByName("nope") != nil {
		t.Fatal("ByName(nope) should be nil")
	}
	if len(EvaluationNames()) != 8 {
		t.Fatal("EvaluationNames should list 8")
	}
}

func TestRocketfuelLikeDeterministic(t *testing.T) {
	a := RocketfuelLike("X", 30, 99)
	b := RocketfuelLike("X", 30, 99)
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed must give same topology")
	}
	for i := range a.Links() {
		if a.Link(i) != b.Link(i) {
			t.Fatalf("link %d differs between identical seeds", i)
		}
	}
	c := RocketfuelLike("X", 30, 100)
	if c.NumLinks() == a.NumLinks() {
		// Could coincide, but the link sets should differ somewhere.
		same := true
		for i := range a.Links() {
			if a.Link(i) != c.Link(i) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds gave identical topology")
		}
	}
}

func TestShortestPathsBasics(t *testing.T) {
	g := Internet2()
	r := g.ShortestPaths()
	for a := 0; a < g.NumNodes(); a++ {
		if d := r.Dist(a, a); d != 0 {
			t.Fatalf("Dist(%d,%d) = %d", a, a, d)
		}
		for b := 0; b < g.NumNodes(); b++ {
			if a == b {
				continue
			}
			p := r.Path(a, b)
			if p.Ingress() != a || p.Egress() != b {
				t.Fatalf("path %d→%d has endpoints %d,%d", a, b, p.Ingress(), p.Egress())
			}
			if p.Len() != r.Dist(a, b) {
				t.Fatalf("path %d→%d length %d ≠ dist %d", a, b, p.Len(), r.Dist(a, b))
			}
			// Consecutive nodes joined by the listed link.
			for i, l := range p.Links {
				lk := g.Link(l)
				x, y := p.Nodes[i], p.Nodes[i+1]
				if !(lk.A == x && lk.B == y) && !(lk.A == y && lk.B == x) {
					t.Fatalf("path %d→%d link %d does not join %d-%d", a, b, l, x, y)
				}
			}
		}
	}
}

// Routing symmetry is a paper assumption (§4): Path(b,a) must be the exact
// reverse of Path(a,b).
func TestShortestPathsSymmetry(t *testing.T) {
	for _, g := range Evaluation() {
		r := g.ShortestPaths()
		n := g.NumNodes()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				fwd := r.Path(a, b)
				rev := r.Path(b, a)
				if fwd.Len() != rev.Len() {
					t.Fatalf("%s: asymmetric lengths %d→%d", g.Name(), a, b)
				}
				for i := range fwd.Nodes {
					if fwd.Nodes[i] != rev.Nodes[len(rev.Nodes)-1-i] {
						t.Fatalf("%s: path %d→%d not the reverse of %d→%d", g.Name(), a, b, b, a)
					}
				}
			}
		}
	}
}

func TestPathHelpers(t *testing.T) {
	g := Internet2()
	r := g.ShortestPaths()
	p := r.Path(0, 10)
	if !p.Contains(0) || !p.Contains(10) {
		t.Fatal("Contains endpoints")
	}
	if p.Contains(-1) {
		t.Fatal("Contains(-1)")
	}
	rp := p.Reverse()
	if rp.Ingress() != 10 || rp.Egress() != 0 || rp.Len() != p.Len() {
		t.Fatal("Reverse broken")
	}
	self := r.Path(3, 3)
	if self.Len() != 0 || len(self.Nodes) != 1 {
		t.Fatal("self path should be single node")
	}
}

func TestJaccard(t *testing.T) {
	p1 := Path{Nodes: []int{1, 2, 3}}
	p2 := Path{Nodes: []int{1, 2, 3}}
	if Jaccard(p1, p2) != 1 {
		t.Fatal("identical paths should have overlap 1")
	}
	p3 := Path{Nodes: []int{4, 5}}
	if Jaccard(p1, p3) != 0 {
		t.Fatal("disjoint paths should have overlap 0")
	}
	p4 := Path{Nodes: []int{3, 4, 5}}
	if got := Jaccard(p1, p4); got != 0.2 {
		t.Fatalf("Jaccard = %g, want 0.2", got)
	}
	if Jaccard(Path{}, Path{}) != 0 {
		t.Fatal("empty paths should have overlap 0")
	}
}

func TestJaccardProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	mk := func(seed int64) (Path, Path) {
		rng := rand.New(rand.NewSource(seed))
		gen := func() Path {
			n := 1 + rng.Intn(6)
			nodes := make([]int, n)
			for i := range nodes {
				nodes[i] = rng.Intn(10)
			}
			return Path{Nodes: nodes}
		}
		return gen(), gen()
	}
	// Symmetry and range.
	if err := quick.Check(func(seed int64) bool {
		p1, p2 := mk(seed)
		j12, j21 := Jaccard(p1, p2), Jaccard(p2, p1)
		return j12 == j21 && j12 >= 0 && j12 <= 1
	}, cfg); err != nil {
		t.Fatal(err)
	}
	// Self-similarity is 1 for nonempty paths.
	if err := quick.Check(func(seed int64) bool {
		p1, _ := mk(seed)
		return Jaccard(p1, p1) == 1
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIntersect(t *testing.T) {
	p1 := Path{Nodes: []int{5, 2, 9}}
	p2 := Path{Nodes: []int{9, 7, 2}}
	got := Intersect(p1, p2)
	if len(got) != 2 || got[0] != 2 || got[1] != 9 {
		t.Fatalf("Intersect = %v, want [2 9]", got)
	}
}

func TestPlacementStrategies(t *testing.T) {
	g := Internet2()
	r := g.ShortestPaths()
	obs := MostObservingNode(r, nil)
	orig := MostOriginatingNode(g, nil)
	paths := MostPathsNode(r)
	med := MedoidNode(r)
	for _, v := range []int{obs, orig, paths, med} {
		if v < 0 || v >= g.NumNodes() {
			t.Fatalf("placement out of range: %d", v)
		}
	}
	// With uniform volume, every node originates the same; strategy 1 should
	// return node 0 deterministically.
	if orig != 0 {
		t.Fatalf("MostOriginatingNode(uniform) = %d, want 0", orig)
	}
	// Weighted by a volume function concentrating on node 4.
	orig = MostOriginatingNode(g, func(s, d int) float64 {
		if s == 4 {
			return 100
		}
		return 1
	})
	if orig != 4 {
		t.Fatalf("MostOriginatingNode(weighted) = %d, want 4", orig)
	}
}

func TestKHopNeighborhood(t *testing.T) {
	g := Internet2()
	one := KHopNeighborhood(g, 0, 1)
	if len(one) != g.Degree(0) {
		t.Fatalf("1-hop count %d ≠ degree %d", len(one), g.Degree(0))
	}
	all := KHopNeighborhood(g, 0, g.NumNodes())
	if len(all) != g.NumNodes()-1 {
		t.Fatalf("full neighborhood %d ≠ %d", len(all), g.NumNodes()-1)
	}
	two := KHopNeighborhood(g, 0, 2)
	if len(two) < len(one) {
		t.Fatal("2-hop smaller than 1-hop")
	}
}

func TestPathPoolClosestOverlap(t *testing.T) {
	g := Internet2()
	r := g.ShortestPaths()
	pool := NewPathPool(r)
	if pool.Size() != 11*10 {
		t.Fatalf("pool size %d, want 110", pool.Size())
	}
	fwd := r.Path(0, 10)
	// Target 1 should find the path itself (overlap exactly 1).
	_, ov := pool.ClosestOverlap(fwd, 1)
	if ov != 1 {
		t.Fatalf("overlap at target 1 = %g", ov)
	}
	// Target 0 should find a low-overlap path.
	_, ov = pool.ClosestOverlap(fwd, 0)
	if ov > 0.5 {
		t.Fatalf("overlap at target 0 = %g, expected small", ov)
	}
	levels := pool.OverlapLevels(fwd)
	if len(levels) < 2 || levels[0] > levels[len(levels)-1] {
		t.Fatalf("overlap levels malformed: %v", levels)
	}
}

func TestGenerateAsymmetric(t *testing.T) {
	g := Internet2()
	r := g.ShortestPaths()
	pool := NewPathPool(r)
	lowRng := rand.New(rand.NewSource(1))
	highRng := rand.New(rand.NewSource(1))
	low := GenerateAsymmetric(r, pool, 0.1, lowRng)
	high := GenerateAsymmetric(r, pool, 0.9, highRng)
	if len(low.Pairs) != 110 || len(low.Fwd) != 110 || len(low.Rev) != 110 {
		t.Fatalf("config sizes wrong: %d", len(low.Pairs))
	}
	if low.MeanOverlap >= high.MeanOverlap {
		t.Fatalf("mean overlap should grow with θ: %.3f vs %.3f", low.MeanOverlap, high.MeanOverlap)
	}
	// Forward paths are the shortest paths.
	for i, pr := range low.Pairs {
		want := r.Path(pr[0], pr[1])
		if low.Fwd[i].Len() != want.Len() {
			t.Fatal("forward path is not the shortest path")
		}
	}
}

func TestAddLinkPanics(t *testing.T) {
	g := New("t")
	a := g.AddNode("a", 1)
	b := g.AddNode("b", 1)
	g.AddLink(a, b)
	for _, f := range []func(){
		func() { g.AddLink(a, a) },
		func() { g.AddLink(a, b) },
		func() { g.AddLink(a, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestConnected(t *testing.T) {
	g := New("d")
	g.AddNode("a", 1)
	g.AddNode("b", 1)
	if g.Connected() {
		t.Fatal("two isolated nodes are not connected")
	}
	if New("empty").Connected() {
		t.Fatal("empty graph is not connected")
	}
}
