// Package traffic synthesizes traffic matrices for PoP-level topologies
// using the gravity model the paper adopts (Roughan's recipe, driven by
// city populations), and generates temporally varying matrices for the
// robustness evaluation (§8.2, Fig 15).
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nwids/internal/topology"
)

// BaseSessionsInternet2 is the paper's calibration point: 8 million
// sessions on the 11-PoP Internet2 topology, scaled linearly in PoP count
// for the other topologies (§8.2).
const BaseSessionsInternet2 = 8e6

// Matrix is an origin-destination traffic matrix in sessions per epoch.
// Sessions[a][b] is the volume from PoP a to PoP b; the diagonal is zero.
type Matrix struct {
	N        int
	Sessions [][]float64
}

// NewMatrix returns an all-zero N×N matrix.
func NewMatrix(n int) *Matrix {
	m := &Matrix{N: n, Sessions: make([][]float64, n)}
	for i := range m.Sessions {
		m.Sessions[i] = make([]float64, n)
	}
	return m
}

// Volume returns the session volume from a to b.
func (m *Matrix) Volume(a, b int) float64 { return m.Sessions[a][b] }

// Total returns the total session volume.
func (m *Matrix) Total() float64 {
	var t float64
	for _, row := range m.Sessions {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Scale multiplies every element by f and returns the receiver.
func (m *Matrix) Scale(f float64) *Matrix {
	for _, row := range m.Sessions {
		for j := range row {
			row[j] *= f
		}
	}
	return m
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	for i := range m.Sessions {
		copy(c.Sessions[i], m.Sessions[i])
	}
	return c
}

// TotalSessionsFor scales the paper's Internet2 calibration (8M sessions at
// 11 PoPs) linearly to a topology with n PoPs.
func TotalSessionsFor(n int) float64 {
	return BaseSessionsInternet2 * float64(n) / 11.0
}

// Gravity builds a traffic matrix for g using the gravity model: the volume
// from a to b is proportional to Population(a)·Population(b), normalized so
// the matrix total equals totalSessions. The diagonal is zero.
func Gravity(g *topology.Graph, totalSessions float64) *Matrix {
	n := g.NumNodes()
	m := NewMatrix(n)
	var norm float64
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			w := g.Node(a).Population * g.Node(b).Population
			m.Sessions[a][b] = w
			norm += w
		}
	}
	if norm == 0 {
		return m
	}
	return m.Scale(totalSessions / norm)
}

// GravityDefault builds the default evaluation matrix for g: gravity model
// with the paper's session scaling.
func GravityDefault(g *topology.Graph) *Matrix {
	return Gravity(g, TotalSessionsFor(g.NumNodes()))
}

// VariabilityModel generates time-varying traffic matrices. Each element of
// the base matrix is scaled by an independent lognormal factor with median 1
// and the given log-standard deviation, a stand-in for the empirical CDFs
// the paper derives from the Internet2 TM archive (which is offline); see
// DESIGN.md for the substitution rationale.
type VariabilityModel struct {
	// Sigma is the standard deviation of the log factor (default 0.5).
	Sigma float64
}

// Generate produces count matrices derived from base. The generation is
// deterministic for a given rng state.
func (vm VariabilityModel) Generate(rng *rand.Rand, base *Matrix, count int) []*Matrix {
	sigma := vm.Sigma
	if sigma == 0 {
		sigma = 0.5
	}
	out := make([]*Matrix, count)
	for k := 0; k < count; k++ {
		m := base.Clone()
		for i := range m.Sessions {
			for j := range m.Sessions[i] {
				if i == j || m.Sessions[i][j] == 0 {
					continue
				}
				m.Sessions[i][j] *= math.Exp(rng.NormFloat64() * sigma)
			}
		}
		out[k] = m
	}
	return out
}

// String renders a compact summary.
func (m *Matrix) String() string {
	return fmt.Sprintf("traffic.Matrix{%d PoPs, %.3g sessions}", m.N, m.Total())
}

// PercentileMatrix returns the element-wise q-quantile across the given
// matrices. Provisioning against a high percentile (e.g. 0.8) instead of
// the mean is the paper's suggested "slack" for absorbing sudden traffic
// shifts (§9, Robustness to dynamics).
func PercentileMatrix(tms []*Matrix, q float64) *Matrix {
	if len(tms) == 0 {
		panic("traffic: PercentileMatrix of no matrices")
	}
	n := tms[0].N
	out := NewMatrix(n)
	vals := make([]float64, len(tms))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k, tm := range tms {
				vals[k] = tm.Sessions[i][j]
			}
			out.Sessions[i][j] = quantile(vals, q)
		}
	}
	return out
}

// quantile computes the q-quantile of xs by linear interpolation without
// mutating xs.
func quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
