package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nwids/internal/topology"
)

func TestGravityTotals(t *testing.T) {
	g := topology.Internet2()
	m := Gravity(g, 8e6)
	if d := math.Abs(m.Total() - 8e6); d > 1 {
		t.Fatalf("total = %g, want 8e6", m.Total())
	}
	for i := 0; i < m.N; i++ {
		if m.Sessions[i][i] != 0 {
			t.Fatalf("diagonal element %d nonzero", i)
		}
	}
}

func TestGravityProportionality(t *testing.T) {
	g := topology.Internet2()
	m := Gravity(g, 1e6)
	// Volume ratio between two pairs must equal the population-product ratio.
	v01 := m.Volume(0, 1)
	v23 := m.Volume(2, 3)
	w01 := g.Node(0).Population * g.Node(1).Population
	w23 := g.Node(2).Population * g.Node(3).Population
	if math.Abs(v01/v23-w01/w23) > 1e-9 {
		t.Fatalf("gravity ratios broken: %g vs %g", v01/v23, w01/w23)
	}
	// Gravity matrices from populations are symmetric in volume.
	for a := 0; a < m.N; a++ {
		for b := 0; b < m.N; b++ {
			if math.Abs(m.Volume(a, b)-m.Volume(b, a)) > 1e-9 {
				t.Fatalf("gravity should be symmetric for product weights")
			}
		}
	}
}

func TestTotalSessionsFor(t *testing.T) {
	if got := TotalSessionsFor(11); got != 8e6 {
		t.Fatalf("TotalSessionsFor(11) = %g", got)
	}
	if got := TotalSessionsFor(22); got != 16e6 {
		t.Fatalf("TotalSessionsFor(22) = %g", got)
	}
}

func TestGravityDefaultScaling(t *testing.T) {
	for _, g := range topology.Evaluation() {
		m := GravityDefault(g)
		want := TotalSessionsFor(g.NumNodes())
		if math.Abs(m.Total()-want) > want*1e-9 {
			t.Fatalf("%s: total %g, want %g", g.Name(), m.Total(), want)
		}
	}
}

// Property: gravity totals are preserved for arbitrary positive targets.
func TestGravityTotalProperty(t *testing.T) {
	g := topology.Geant()
	f := func(raw uint32) bool {
		total := 1 + float64(raw%1000000)
		m := Gravity(g, total)
		return math.Abs(m.Total()-total) < total*1e-9+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndScale(t *testing.T) {
	g := topology.Internet2()
	m := Gravity(g, 100)
	c := m.Clone()
	c.Scale(2)
	if math.Abs(c.Total()-200) > 1e-9 {
		t.Fatalf("scaled total = %g", c.Total())
	}
	if math.Abs(m.Total()-100) > 1e-9 {
		t.Fatalf("clone mutated the original: %g", m.Total())
	}
}

func TestVariabilityGenerate(t *testing.T) {
	g := topology.Internet2()
	base := Gravity(g, 1e6)
	rng := rand.New(rand.NewSource(5))
	tms := VariabilityModel{Sigma: 0.5}.Generate(rng, base, 100)
	if len(tms) != 100 {
		t.Fatalf("got %d matrices", len(tms))
	}
	// Deterministic for the same seed.
	rng2 := rand.New(rand.NewSource(5))
	tms2 := VariabilityModel{Sigma: 0.5}.Generate(rng2, base, 100)
	if tms[0].Volume(0, 1) != tms2[0].Volume(0, 1) {
		t.Fatal("generation is not deterministic")
	}
	// Totals vary around the base total; median factor is 1, so the spread
	// must straddle the base total.
	lower, higher := 0, 0
	for _, m := range tms {
		if m.Total() < base.Total() {
			lower++
		} else {
			higher++
		}
	}
	if lower == 0 || higher == 0 {
		t.Fatalf("variability one-sided: %d below, %d above", lower, higher)
	}
	// Zero elements stay zero.
	for _, m := range tms {
		for i := 0; i < m.N; i++ {
			if m.Sessions[i][i] != 0 {
				t.Fatal("diagonal became nonzero")
			}
		}
	}
}

func TestVariabilityDefaultSigma(t *testing.T) {
	g := topology.Internet2()
	base := Gravity(g, 1e6)
	rng := rand.New(rand.NewSource(1))
	tms := VariabilityModel{}.Generate(rng, base, 1)
	if tms[0].Volume(0, 1) == base.Volume(0, 1) {
		t.Fatal("default sigma should perturb elements")
	}
}

func TestMatrixString(t *testing.T) {
	m := NewMatrix(3)
	if m.String() == "" {
		t.Fatal("empty String")
	}
}

func TestPercentileMatrix(t *testing.T) {
	g := topology.Internet2()
	base := Gravity(g, 1e6)
	rng := rand.New(rand.NewSource(21))
	tms := VariabilityModel{Sigma: 0.5}.Generate(rng, base, 60)
	p50 := PercentileMatrix(tms, 0.5)
	p80 := PercentileMatrix(tms, 0.8)
	p100 := PercentileMatrix(tms, 1)
	// Quantiles are monotone element-wise.
	for i := 0; i < p50.N; i++ {
		for j := 0; j < p50.N; j++ {
			if p50.Sessions[i][j] > p80.Sessions[i][j]+1e-9 || p80.Sessions[i][j] > p100.Sessions[i][j]+1e-9 {
				t.Fatalf("quantiles not monotone at (%d,%d)", i, j)
			}
		}
	}
	// The max matrix dominates every sample.
	for _, tm := range tms {
		for i := 0; i < tm.N; i++ {
			for j := 0; j < tm.N; j++ {
				if tm.Sessions[i][j] > p100.Sessions[i][j]+1e-9 {
					t.Fatal("p100 must dominate all samples")
				}
			}
		}
	}
	// Lognormal with median 1: the 50th percentile sits near the base.
	if p50.Total() < 0.8*base.Total() || p50.Total() > 1.2*base.Total() {
		t.Fatalf("p50 total %g vs base %g", p50.Total(), base.Total())
	}
}

func TestPercentileMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for empty input")
		}
	}()
	PercentileMatrix(nil, 0.5)
}
