// Package nwids is a from-scratch reproduction of "New Opportunities for
// Load Balancing in Network-Wide Intrusion Detection Systems" (Heorhiadi,
// Reiter, Sekar — CoNEXT 2012): a network-wide NIDS controller that assigns
// processing, replication and aggregation responsibilities across a
// topology by solving linear programs, plus the substrates the paper's
// evaluation needs — an LP solver, PoP-level topologies, gravity traffic
// matrices, a signature/scan NIDS engine, the hash-range shim layer, and an
// Emulab-style emulation.
//
// The package is a facade over the internal packages; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-vs-measured record.
//
// Quickstart:
//
//	g := nwids.Internet2()
//	sc := nwids.DefaultScenario(g)
//	a, err := nwids.SolveReplication(sc, nwids.ReplicationConfig{
//		Mirror: nwids.MirrorDCOnly, MaxLinkLoad: 0.4, DCCapacity: 10,
//	})
//	fmt.Println(a.MaxLoad()) // ≈ 0.1, vs 1.0 for today's ingress-only
package nwids

import (
	"nwids/internal/controller"
	"nwids/internal/core"
	"nwids/internal/emulation"
	"nwids/internal/nids"
	"nwids/internal/shim"
	"nwids/internal/topology"
	"nwids/internal/traffic"
)

// Topology modeling.
type (
	// Graph is a PoP-level topology.
	Graph = topology.Graph
	// Path is a routed path through a Graph.
	Path = topology.Path
	// Routing holds all-pairs symmetric shortest paths.
	Routing = topology.Routing
	// AsymmetricRoutes emulates hot-potato routing asymmetry (§5, §8.3).
	AsymmetricRoutes = topology.AsymmetricRoutes
	// PathPool supplies candidate reverse paths by target overlap.
	PathPool = topology.PathPool
)

// Built-in evaluation topologies (Table 1).
var (
	Internet2          = topology.Internet2
	Geant              = topology.Geant
	Enterprise         = topology.Enterprise
	RocketfuelLike     = topology.RocketfuelLike
	Topologies         = topology.Evaluation
	TopologyByName     = topology.ByName
	NewGraph           = topology.New
	NewPathPool        = topology.NewPathPool
	GenerateAsymmetric = topology.GenerateAsymmetric
	Jaccard            = topology.Jaccard
	JaccardLinks       = topology.JaccardLinks
)

// Traffic synthesis.
type (
	// TrafficMatrix is an origin-destination session-volume matrix.
	TrafficMatrix = traffic.Matrix
	// VariabilityModel generates time-varying matrices (Fig 15).
	VariabilityModel = traffic.VariabilityModel
)

// Gravity-model constructors.
var (
	Gravity          = traffic.Gravity
	GravityDefault   = traffic.GravityDefault
	NewMatrix        = traffic.NewMatrix
	PercentileMatrix = traffic.PercentileMatrix
)

// Controller: scenarios, formulations, architectures.
type (
	// Scenario is the controller's network view (§3).
	Scenario = core.Scenario
	// ScenarioOptions configure scenario construction.
	ScenarioOptions = core.ScenarioOptions
	// Class is one traffic class.
	Class = core.Class
	// ReplicationConfig parameterizes the replication LP (§4).
	ReplicationConfig = core.ReplicationConfig
	// MirrorPolicy selects mirror sets M_j.
	MirrorPolicy = core.MirrorPolicy
	// Assignment is the controller's output.
	Assignment = core.Assignment
	// ActionFrac is one fractional processing action.
	ActionFrac = core.ActionFrac
	// AggregationConfig parameterizes the aggregation LP (§6).
	AggregationConfig = core.AggregationConfig
	// AggregationResult carries its outcome.
	AggregationResult = core.AggregationResult
	// SplitConfig parameterizes the split-traffic LP (§5).
	SplitConfig = core.SplitConfig
	// SplitResult carries its outcome.
	SplitResult = core.SplitResult
	// SplitClass is a class under routing asymmetry.
	SplitClass = core.SplitClass
	// PlacementStrategy names a DC placement heuristic (§8.2).
	PlacementStrategy = core.PlacementStrategy
	// SoftLinkConfig parameterizes the piecewise-linear link-cost variant
	// (§4 Extensions).
	SoftLinkConfig = core.SoftLinkConfig
	// SoftLinkResult carries its outcome.
	SoftLinkResult = core.SoftLinkResult
	// LinkCostFunction is a convex piecewise-linear utilization penalty.
	LinkCostFunction = core.LinkCostFunction
	// NIPSConfig parameterizes the §9 rerouting (intrusion prevention)
	// extension with latency budgets.
	NIPSConfig = core.NIPSConfig
	// NIPSResult carries its outcome.
	NIPSResult = core.NIPSResult
	// ReplicationSolver is the reusable warm-starting handle over the
	// replication LP for parameter sweeps.
	ReplicationSolver = core.ReplicationSolver
	// AggregationSolver is the warm-starting handle for β sweeps.
	AggregationSolver = core.AggregationSolver
	// NIPSSolver is the warm-starting handle for the rerouting LP.
	NIPSSolver = core.NIPSSolver
	// SplitSolver is the warm-starting handle for the split-traffic LP.
	SplitSolver = core.SplitSolver
)

// Mirror policies (§4).
const (
	MirrorNone         = core.MirrorNone
	MirrorDCOnly       = core.MirrorDCOnly
	MirrorOneHop       = core.MirrorOneHop
	MirrorTwoHop       = core.MirrorTwoHop
	MirrorDCPlusOneHop = core.MirrorDCPlusOneHop
)

// Placement strategies (§8.2).
const (
	PlaceMostOriginating = core.PlaceMostOriginating
	PlaceMostObserving   = core.PlaceMostObserving
	PlaceMostPaths       = core.PlaceMostPaths
	PlaceMedoid          = core.PlaceMedoid
)

// Controller entry points.
var (
	NewScenario              = core.NewScenario
	NewReplicationSolver     = core.NewReplicationSolver
	NewAggregationSolver     = core.NewAggregationSolver
	NewNIPSSolver            = core.NewNIPSSolver
	NewSplitSolver           = core.NewSplitSolver
	SolveReplication         = core.SolveReplication
	SolveAggregation         = core.SolveAggregation
	SolveSplit               = core.SolveSplit
	SolveReplicationSoftLink = core.SolveReplicationSoftLink
	SolveNIPS                = core.SolveNIPS
	BuildSplitClasses        = core.BuildSplitClasses
	IngressSplit             = core.IngressSplit
	IngressOnly              = core.Ingress
	IngressAggregation       = core.IngressAggregation
	Place                    = core.Place
	DCPlacement              = core.DCPlacement
	FortzThorupCost          = core.FortzThorupCost
	BuildReplicationProblem  = core.BuildReplicationProblem
)

// DefaultScenario builds the paper's default evaluation scenario for a
// topology: gravity traffic at 8M sessions per 11 PoPs and calibrated
// capacities (§8.2).
func DefaultScenario(g *Graph) *Scenario {
	return core.NewScenario(g, traffic.GravityDefault(g), core.ScenarioOptions{})
}

// NIDS engine.
type (
	// Rule is a payload signature.
	Rule = nids.Rule
	// Engine is a single NIDS instance (signature + scan + flow table).
	Engine = nids.Engine
	// Matcher is the Aho-Corasick automaton.
	Matcher = nids.Matcher
	// ScanDetector counts distinct destinations per source.
	ScanDetector = nids.ScanDetector
)

// NIDS constructors.
var (
	DefaultRules    = nids.DefaultRules
	NewEngine       = nids.NewEngine
	NewMatcher      = nids.NewMatcher
	NewScanDetector = nids.NewScanDetector
)

// Shim layer (§7).
type (
	// ShimConfig is one node's hash-range configuration.
	ShimConfig = shim.Config
	// Shim executes a config per packet.
	Shim = shim.Shim
)

// Shim entry points.
var (
	CompileShimConfigs = shim.CompileConfigs
	NewShim            = shim.New
	HashTuple          = shim.HashTuple
	HashFraction       = shim.HashFraction
	// MergeShimConfigs builds §9 transition configurations honoring both
	// the previous and the next assignment during reconfiguration.
	MergeShimConfigs = shim.MergeConfigs
)

// Emulation (§8.1).
type (
	// EmulationConfig parameterizes an Emulab-style run.
	EmulationConfig = emulation.Config
	// EmulationResult holds per-node work and detection statistics.
	EmulationResult = emulation.Result
)

// Emulate runs the emulation.
var Emulate = emulation.Run

// Distributed scan detection over an aggregation assignment (§7.3).
type (
	// ScanEmulationConfig parameterizes an end-to-end distributed
	// scan-detection run.
	ScanEmulationConfig = emulation.ScanConfig
	// ScanEmulationResult carries alerts, the centralized oracle's
	// verdicts, and the byte-hop report cost.
	ScanEmulationResult = emulation.ScanResult
)

// EmulateScan runs distributed scan detection.
var EmulateScan = emulation.RunScan

// Topology file format.
var (
	// ParseTopology reads the plain-text topology format.
	ParseTopology = topology.Parse
	// FormatTopology writes it.
	FormatTopology = topology.Format
)

// Online controller (§9): drift-triggered warm re-solves rolled out as
// two-phase make-before-break reconfigurations.
type (
	// Controller owns the reconfiguration state machine.
	Controller = controller.Controller
	// ControllerConfig parameterizes it.
	ControllerConfig = controller.Config
	// Planner turns per-class target fractions into hash-range layouts.
	Planner = controller.Planner
	// ChurnMinPlanner moves only the fractional slack between epochs.
	ChurnMinPlanner = controller.ChurnMinPlanner
	// NaivePlanner recomputes every layout from scratch (the baseline).
	NaivePlanner = controller.NaivePlanner
	// Fleet receives two-phase config pushes from the controller.
	Fleet = controller.Fleet
	// DriftEmulationConfig parameterizes a drifting-workload run.
	DriftEmulationConfig = emulation.DriftConfig
	// DriftEmulationResult carries churn, parity and counter statistics.
	DriftEmulationResult = emulation.DriftResult
)

// Online-controller entry points.
var (
	// NewController solves epoch 0 and pushes the initial clean configs.
	NewController = controller.New
	// OwnerChurn measures the hash fraction whose owner changes between
	// two layouts of one class.
	OwnerChurn = controller.OwnerChurn
	// EmulateDrift runs a drifting workload under the online controller.
	EmulateDrift = emulation.RunDrift
	// DriftScenario builds the preset diurnal / flash / drain workloads.
	DriftScenario = emulation.DriftScenario
)
