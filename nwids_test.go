package nwids_test

import (
	"math"
	"testing"

	"nwids"
)

// TestFacadeQuickstart exercises the doc-comment quickstart end to end.
func TestFacadeQuickstart(t *testing.T) {
	g := nwids.Internet2()
	sc := nwids.DefaultScenario(g)
	a, err := nwids.SolveReplication(sc, nwids.ReplicationConfig{
		Mirror: nwids.MirrorDCOnly, MaxLinkLoad: 0.4, DCCapacity: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxLoad() >= 0.5 {
		t.Fatalf("replication max load = %.3f, expected well below ingress-only 1.0", a.MaxLoad())
	}
	ing := nwids.IngressOnly(sc)
	if math.Abs(ing.MaxLoad()-1) > 1e-9 {
		t.Fatalf("ingress max load = %g", ing.MaxLoad())
	}
}

// TestFacadeEndToEnd runs controller → shim configs → emulation through the
// public API only.
func TestFacadeEndToEnd(t *testing.T) {
	sc := nwids.DefaultScenario(nwids.Internet2())
	a, err := nwids.SolveReplication(sc, nwids.ReplicationConfig{
		Mirror: nwids.MirrorDCOnly, MaxLinkLoad: 0.4, DCCapacity: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := nwids.CompileShimConfigs(a, 1)
	if len(cfgs) != 12 {
		t.Fatalf("shim configs = %d", len(cfgs))
	}
	res, err := nwids.Emulate(nwids.EmulationConfig{Assignment: a, TotalSessions: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.OwnershipErrors != 0 {
		t.Fatalf("ownership errors: %d", res.OwnershipErrors)
	}
	if res.DetectedSessions < res.MaliciousSessions {
		t.Fatal("lost detections")
	}
}

func TestFacadeNIDSTypes(t *testing.T) {
	rules := nwids.DefaultRules()
	e := nwids.NewEngine(rules, 10)
	if e.ActiveFlows() != 0 {
		t.Fatal("fresh engine")
	}
	m := nwids.NewMatcher([][]byte{[]byte("abc")})
	if m.ScanCount([]byte("zabcz")) != 1 {
		t.Fatal("matcher via facade")
	}
	d := nwids.NewScanDetector(1)
	d.Observe(1, 2)
	d.Observe(1, 3)
	if len(d.Report()) != 1 {
		t.Fatal("scan detector via facade")
	}
}

func TestFacadeTopologyHelpers(t *testing.T) {
	if len(nwids.Topologies()) != 8 {
		t.Fatal("Topologies")
	}
	if nwids.TopologyByName("NTT").NumNodes() != 70 {
		t.Fatal("ByName")
	}
	g := nwids.RocketfuelLike("x", 10, 5)
	if !g.Connected() {
		t.Fatal("generator")
	}
	sc := nwids.DefaultScenario(nwids.Geant())
	if nwids.DCPlacement(sc) < 0 {
		t.Fatal("placement")
	}
}
